// The compiled flat routing engine must be bit-identical to the reference
// behavioral router — exhaustively over all N! permutations for m <= 3,
// and over large random samples up to m = 12 — while performing ZERO heap
// allocations in steady state (verified through the counting operator new
// of alloc_count_hook.cpp) and scaling across the batch worker pool.
#include <gtest/gtest.h>

#include <numeric>

#include "alloc_count_hook.hpp"
#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/bit_pack.hpp"
#include "core/bnb_network.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "core/schedule_cache.hpp"
#include "core/splitter.hpp"
#include "fabric/staged_router.hpp"
#include "obs/span.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

/// Route one random permutation through `engine` with `scratch`; true iff
/// it self-routed (shape mismatches would throw or mis-route).
bool engine_route_ok(const CompiledBnb& engine, RouteScratch& scratch, Rng& rng) {
  const auto out = engine.route(random_perm(engine.inputs(), rng), scratch);
  return out.self_routed;
}

void expect_equal_routing(const BnbNetwork& ref, const CompiledBnb& engine,
                          RouteScratch& scratch, const Permutation& pi) {
  const auto expected = ref.route(pi);
  const auto got = engine.route(pi, scratch);
  ASSERT_EQ(expected.self_routed, got.self_routed) << pi.to_string();
  ASSERT_EQ(expected.dest.size(), got.dest.size());
  for (std::size_t j = 0; j < expected.dest.size(); ++j) {
    ASSERT_EQ(expected.dest[j], got.dest[j]) << "input " << j << " of " << pi.to_string();
  }
  for (std::size_t line = 0; line < expected.outputs.size(); ++line) {
    ASSERT_EQ(expected.outputs[line], got.outputs[line])
        << "line " << line << " of " << pi.to_string();
  }
}

TEST(CompiledBnb, ExhaustiveAllPermutationsUpToM3) {
  for (unsigned m = 1; m <= 3; ++m) {
    const BnbNetwork ref(m);
    const CompiledBnb engine(m);
    RouteScratch scratch;
    Permutation pi(std::size_t{1} << m);
    std::size_t count = 0;
    do {
      expect_equal_routing(ref, engine, scratch, pi);
      ++count;
    } while (pi.next_lexicographic());
    std::uint64_t expected_count = 1;
    for (std::size_t v = 2; v <= (std::size_t{1} << m); ++v) expected_count *= v;
    EXPECT_EQ(count, expected_count) << "m=" << m;
  }
}

TEST(CompiledBnb, RandomPermutationsMediumSizes) {
  // m = 14 rides along with fewer rounds: its arbiter level stacks are the
  // deepest exercised anywhere and once hid a scratch-sizing overflow.
  constexpr std::pair<unsigned, int> kCases[] = {{6, 1000}, {10, 1000}, {12, 1000}, {14, 40}};
  for (const auto [m, rounds] : kCases) {
    const BnbNetwork ref(m);
    const CompiledBnb engine(m);
    RouteScratch scratch;
    Rng rng(0xE0E0 + m);
    for (int round = 0; round < rounds; ++round) {
      const Permutation pi = random_perm(std::size_t{1} << m, rng);
      const auto expected = ref.route(pi);
      const auto got = engine.route(pi, scratch);
      ASSERT_TRUE(got.self_routed) << "m=" << m << " round " << round;
      ASSERT_EQ(expected.self_routed, got.self_routed);
      for (std::size_t j = 0; j < expected.dest.size(); ++j) {
        ASSERT_EQ(expected.dest[j], got.dest[j]) << "m=" << m << " round " << round;
      }
      for (std::size_t line = 0; line < expected.outputs.size(); ++line) {
        ASSERT_EQ(expected.outputs[line], got.outputs[line]) << "m=" << m;
      }
    }
  }
}

TEST(CompiledBnb, RouteWordsCarriesPayloads) {
  Rng rng(0xABCD);
  for (const unsigned m : {2U, 5U, 8U}) {
    const std::size_t n = std::size_t{1} << m;
    const BnbNetwork ref(m);
    const CompiledBnb engine(m);
    RouteScratch scratch;
    for (int round = 0; round < 20; ++round) {
      const Permutation pi = random_perm(n, rng);
      std::vector<Word> words(n);
      for (std::size_t j = 0; j < n; ++j) words[j] = Word{pi(j), rng.next()};
      const auto expected = ref.route_words(words);
      const auto got = engine.route_words(words, scratch);
      ASSERT_EQ(expected.self_routed, got.self_routed);
      for (std::size_t line = 0; line < n; ++line) {
        ASSERT_EQ(expected.outputs[line], got.outputs[line]) << "m=" << m;
      }
    }
  }
}

TEST(CompiledBnb, RouteWordsValidatesAddresses) {
  const CompiledBnb engine(3);
  RouteScratch scratch;
  std::vector<Word> words(8);
  for (std::size_t j = 0; j < 8; ++j) words[j] = Word{static_cast<std::uint32_t>(j), 0};
  words[3].address = 5;  // duplicate 5, missing 3
  EXPECT_THROW((void)engine.route_words(words, scratch), contract_violation);
  words[3].address = 99;  // out of range
  EXPECT_THROW((void)engine.route_words(words, scratch), contract_violation);
}

TEST(CompiledBnb, SteadyStateRoutingAllocatesNothing) {
  const unsigned m = 10;
  const CompiledBnb engine(m);
  RouteScratch scratch;
  scratch.prepare(engine);
  ASSERT_TRUE(scratch.prepared_for(engine));

  Rng rng(0x5EED);
  std::vector<Permutation> perms;
  for (int i = 0; i < 8; ++i) perms.push_back(random_perm(engine.inputs(), rng));
  std::vector<Word> words(engine.inputs());
  for (std::size_t j = 0; j < engine.inputs(); ++j) words[j] = Word{perms[0](j), j};

  // Warm-up (first call may still touch lazily prepared state).
  (void)engine.route(perms[0], scratch);

  // The measured region runs with full telemetry live — enabled spans AND
  // a structured trace sink installed — so the zero-allocation guarantee
  // covers the instrumentation too (spans record into preallocated state).
  obs::set_enabled(true);
  obs::SpanTrace span_trace(64);
  obs::set_trace(&span_trace);

  testhook::reset_allocation_count();
  for (const auto& pi : perms) {
    const auto out = engine.route(pi, scratch);
    ASSERT_TRUE(out.self_routed);
  }
  const auto out = engine.route_words(words, scratch);
  ASSERT_TRUE(out.self_routed);
  const std::size_t allocs = testhook::allocation_count();
  obs::set_trace(nullptr);
  EXPECT_EQ(allocs, 0U)
      << "steady-state route (with telemetry live) must not touch the heap";
#if BNB_OBS_COMPILED
  EXPECT_EQ(span_trace.recorded(), static_cast<std::uint64_t>(perms.size()) + 1);
#else
  EXPECT_EQ(span_trace.recorded(), 0U);  // BNB_OBS_OFF: spans compiled out
#endif
}

TEST(CompiledBnb, ScratchPreparesLazilyOnFirstRoute) {
  const CompiledBnb engine(6);
  RouteScratch scratch;
  EXPECT_FALSE(scratch.prepared_for(engine));
  Rng rng(7);
  const auto out = engine.route(random_perm(engine.inputs(), rng), scratch);
  EXPECT_TRUE(out.self_routed);
  EXPECT_TRUE(scratch.prepared_for(engine));
}

TEST(CompiledBnb, ScratchReuseAcrossPlansReChecksShape) {
  // Regression: prepared_for must compare the SHAPE (m and packed word
  // width), not object identity — and a scratch carried to a plan of a
  // different shape must re-prepare instead of routing through stale-sized
  // buffers.
  Rng rng(0x5CA7C);
  const CompiledBnb small(5);
  const CompiledBnb same_shape(5, &kernels::scalar_kernels());
  const CompiledBnb large(9);

  RouteScratch scratch;
  scratch.prepare(small);
  ASSERT_TRUE(scratch.prepared_for(small));
  // Same m, different kernel tier: one scratch serves both plans with no
  // reallocation (it always carries the per-line AND the sliced buffers).
  EXPECT_TRUE(scratch.prepared_for(same_shape));
  EXPECT_TRUE(engine_route_ok(same_shape, scratch, rng));
  EXPECT_TRUE(engine_route_ok(small, scratch, rng));

  // Different m: the shape check must fail and the next route re-prepare.
  EXPECT_FALSE(scratch.prepared_for(large));
  EXPECT_TRUE(engine_route_ok(large, scratch, rng));
  EXPECT_TRUE(scratch.prepared_for(large));
  EXPECT_FALSE(scratch.prepared_for(small));

  // And back down: shrinking is a re-prepare too, not an out-of-bounds ride
  // on the larger buffers.
  EXPECT_TRUE(engine_route_ok(small, scratch, rng));
  EXPECT_TRUE(scratch.prepared_for(small));
}

TEST(CompiledBnb, FirstColumnControlsMatchSplitterReference) {
  // Column 0 is the single sp(m) of main stage 0: its packed controls must
  // equal the scalar Splitter's, which exercises the word-parallel arbiter
  // against the independent tree implementation.
  Rng rng(0xC0117);
  for (const unsigned m : {2U, 3U, 5U, 7U, 9U}) {
    const std::size_t n = std::size_t{1} << m;
    const CompiledBnb engine(m);
    const Splitter sp(m);
    for (int round = 0; round < 25; ++round) {
      const Permutation pi = random_perm(n, rng);
      RouteScratch scratch;
      ControlTrace trace;
      (void)engine.route(pi, scratch, &trace);
      ASSERT_EQ(trace.column_controls.size(), m * (m + 1) / 2);

      std::vector<std::uint8_t> bits(n);
      for (std::size_t j = 0; j < n; ++j) {
        bits[j] = static_cast<std::uint8_t>(bit_of(pi(j), m - 1));
      }
      const auto ref = sp.route(bits);
      for (std::size_t t = 0; t < n / 2; ++t) {
        ASSERT_EQ(ref.controls[t], bitpack::get_bit(trace.column_controls[0].data(), t))
            << "m=" << m << " switch " << t;
      }
    }
  }
}

TEST(CompiledBnb, BatchMatchesSequentialRouting) {
  const unsigned m = 8;
  const CompiledBnb engine(m);
  const std::size_t n = engine.inputs();
  Rng rng(0xBA7C);
  std::vector<Permutation> perms;
  for (int i = 0; i < 33; ++i) perms.push_back(random_perm(n, rng));

  RouteScratch scratch;
  for (const unsigned threads : {1U, 2U, 4U}) {
    const auto batch = engine.route_batch(perms, threads);
    EXPECT_TRUE(batch.all_self_routed);
    EXPECT_EQ(batch.permutations, perms.size());
    ASSERT_EQ(batch.dest.size(), perms.size() * n);
    for (std::size_t i = 0; i < perms.size(); ++i) {
      const auto expected = engine.route(perms[i], scratch);
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(batch.dest[i * n + j], expected.dest[j])
            << "threads=" << threads << " perm " << i;
      }
    }
  }
}

TEST(CompiledBnb, BatchValidatesInput) {
  const CompiledBnb engine(4);
  // A wrong-size permutation trips a contract check inside a worker; the
  // pool must capture it and rethrow batch_route_error naming the index —
  // never std::terminate the process.
  std::vector<Permutation> perms{Permutation(16), Permutation(8)};  // size mismatch
  bool threw = false;
  try {
    (void)engine.route_batch(perms, 2);
  } catch (const batch_route_error& e) {
    threw = true;
    EXPECT_EQ(e.index(), 1U);
    EXPECT_TRUE(e.cause() != nullptr);
    bool cause_is_contract = false;
    try {
      std::rethrow_exception(e.cause());
    } catch (const contract_violation&) {
      cause_is_contract = true;
    } catch (...) {
    }
    EXPECT_TRUE(cause_is_contract);
    EXPECT_TRUE(std::string(e.what()).find("permutation 1") != std::string::npos);
  }
  EXPECT_TRUE(threw);

  const std::vector<Permutation> none;
  EXPECT_THROW((void)engine.route_batch(none, 0), contract_violation);

  const auto empty = engine.route_batch(none, 4);
  EXPECT_TRUE(empty.all_self_routed);
  EXPECT_EQ(empty.permutations, 0U);
}

TEST(CompiledBnb, BatchWorkStealingCoversEveryChunkShape) {
  // The chunked work-stealing scheduler must produce the same destinations
  // as sequential routing whatever the chunk geometry: more threads than
  // permutations (the oversubscription guard clamps the pool), prime batch
  // sizes that leave ragged final chunks, and enough chunks per worker that
  // idle workers actually steal.
  const unsigned m = 5;
  const CompiledBnb engine(m);
  const std::size_t n = engine.inputs();
  Rng rng(0x57EA1);
  std::vector<Permutation> perms;
  for (int i = 0; i < 101; ++i) perms.push_back(random_perm(n, rng));

  RouteScratch scratch;
  std::vector<std::uint32_t> expected;
  expected.reserve(perms.size() * n);
  for (const auto& pi : perms) {
    const auto out = engine.route(pi, scratch);
    expected.insert(expected.end(), out.dest.begin(), out.dest.end());
  }

  for (const unsigned threads : {1U, 2U, 3U, 7U, 64U, 256U}) {
    const auto batch = engine.route_batch(perms, threads);
    EXPECT_TRUE(batch.all_self_routed) << "threads=" << threads;
    ASSERT_EQ(batch.dest, expected) << "threads=" << threads;
  }

  // Tiny batch, huge pool request: must still name the right failure index.
  std::vector<Permutation> tiny{perms[0], Permutation(n / 2), perms[1]};
  try {
    (void)engine.route_batch(tiny, 32);
    FAIL() << "expected batch_route_error";
  } catch (const batch_route_error& e) {
    EXPECT_EQ(e.index(), 1U);
  }
}

TEST(CompiledBnb, StagedRouterSharesThePlan) {
  // The column-steppable router must deliver the exact words of both the
  // behavioral reference and the compiled engine, and its per-column shape
  // must match the plan it now runs on.
  Rng rng(0x57A6ED);
  for (const unsigned m : {1U, 3U, 5U, 7U}) {
    const std::size_t n = std::size_t{1} << m;
    const StagedBnbRouter staged(m);
    const BnbNetwork ref(m);
    EXPECT_EQ(staged.total_columns(), m * (m + 1) / 2);
    EXPECT_EQ(staged.plan().columns().size(), staged.total_columns());
    for (int round = 0; round < 30; ++round) {
      const Permutation pi = random_perm(n, rng);
      std::vector<Word> words(n);
      for (std::size_t j = 0; j < n; ++j) words[j] = Word{pi(j), j};
      const auto lines = staged.run_to_completion(words);
      const auto expected = ref.route_words(words);
      ASSERT_EQ(lines.size(), n);
      for (std::size_t line = 0; line < n; ++line) {
        ASSERT_EQ(lines[line], expected.outputs[line]) << "m=" << m;
      }
    }
  }
}

TEST(CompiledBnb, ColumnTableShape) {
  const unsigned m = 5;
  const CompiledBnb engine(m);
  const auto cols = engine.columns();
  ASSERT_EQ(cols.size(), m * (m + 1) / 2);
  std::size_t idx = 0;
  for (unsigned i = 0; i < m; ++i) {
    for (unsigned j = 0; j < m - i; ++j, ++idx) {
      EXPECT_EQ(cols[idx].main_stage, i);
      EXPECT_EQ(cols[idx].nested_stage, j);
      EXPECT_EQ(cols[idx].p, m - i - j);
      if (j + 1 < m - i) {
        EXPECT_TRUE(cols[idx].update_bits);
        EXPECT_EQ(cols[idx].group, 1U << (m - i - j));
      } else {
        EXPECT_FALSE(cols[idx].update_bits);
        EXPECT_EQ(cols[idx].group, i + 1 < m ? 1U << (m - i) : 2U);
      }
    }
  }
}

// ---- solve/apply split -------------------------------------------------

/// solve() + apply() must equal the fused route() bit for bit, and the
/// materialized schedule's packed per-column controls must equal what
/// ControlTrace observes on the arbiter path.
void expect_solve_apply_equivalence(const CompiledBnb& engine, const Permutation& pi,
                                    const char* label) {
  RouteScratch route_scratch;
  ControlTrace trace;
  const auto want = engine.route(pi, route_scratch, &trace);

  RouteScratch scratch;
  ControlSchedule schedule;
  engine.solve(pi, scratch, schedule);
  ASSERT_TRUE(schedule.solved()) << label;
  ASSERT_TRUE(schedule.prepared_for(engine)) << label;
  ASSERT_EQ(schedule.columns(), engine.columns().size()) << label;

  ASSERT_EQ(trace.column_controls.size(), schedule.columns()) << label;
  for (std::size_t c = 0; c < schedule.columns(); ++c) {
    ASSERT_EQ(trace.column_controls[c].size(), schedule.control_words()) << label;
    for (std::size_t w = 0; w < schedule.control_words(); ++w) {
      ASSERT_EQ(schedule.column(c)[w], trace.column_controls[c][w])
          << label << ": schedule controls diverge from the arbiter path at column "
          << c << " word " << w;
    }
  }

  const auto got = engine.apply(schedule, pi, scratch);
  ASSERT_EQ(got.self_routed, want.self_routed) << label;
  for (std::size_t j = 0; j < engine.inputs(); ++j) {
    ASSERT_EQ(got.dest[j], want.dest[j]) << label << " dest[" << j << "]";
    ASSERT_EQ(got.outputs[j], want.outputs[j]) << label << " line " << j;
  }
}

TEST(CompiledBnb, SolveApplyMatchesRouteExhaustiveSmallM) {
  for (unsigned m = 1; m <= 3; ++m) {
    const CompiledBnb engine(m);
    Permutation pi(std::size_t{1} << m);
    do {
      expect_solve_apply_equivalence(engine, pi, "exhaustive");
    } while (pi.next_lexicographic());
  }
}

TEST(CompiledBnb, SolveApplyMatchesRouteRandomizedAcrossTiersUpToM12) {
  Rng rng(0x501E);
  for (const unsigned m : {4U, 6U, 8U, 12U}) {
    const Permutation pi = random_perm(std::size_t{1} << m, rng);
    for (const kernels::KernelSet* set : kernels::supported_kernel_sets()) {
      const CompiledBnb engine(m, set);
      expect_solve_apply_equivalence(engine, pi, set->name);
    }
  }
}

TEST(CompiledBnb, ScheduleIsTierInvariant) {
  // A schedule solved on one tier applies on a plan pinned to any other:
  // the control plane is tier-independent even though the datapaths differ.
  Rng rng(0x501F);
  const unsigned m = 8;
  const Permutation pi = random_perm(std::size_t{1} << m, rng);
  const auto sets = kernels::supported_kernel_sets();

  const CompiledBnb ref(m, sets.front());
  RouteScratch ref_scratch;
  const auto want = ref.route(pi, ref_scratch);

  for (const kernels::KernelSet* solver_set : sets) {
    const CompiledBnb solver(m, solver_set);
    RouteScratch scratch;
    ControlSchedule schedule;
    solver.solve(pi, scratch, schedule);
    for (const kernels::KernelSet* applier_set : sets) {
      const CompiledBnb applier(m, applier_set);
      RouteScratch apply_scratch;
      const auto got = applier.apply(schedule, pi, apply_scratch);
      ASSERT_TRUE(got.self_routed) << solver_set->name << "->" << applier_set->name;
      for (std::size_t j = 0; j < ref.inputs(); ++j) {
        ASSERT_EQ(got.dest[j], want.dest[j])
            << solver_set->name << "->" << applier_set->name << " dest[" << j << "]";
      }
    }
  }
}

TEST(CompiledBnb, ApplyWordsMatchesRouteWords) {
  Rng rng(0x5020);
  for (const unsigned m : {3U, 6U, 9U}) {
    const std::size_t n = std::size_t{1} << m;
    const CompiledBnb engine(m);
    RouteScratch scratch;
    for (int round = 0; round < 10; ++round) {
      const Permutation pi = random_perm(n, rng);
      std::vector<Word> words(n);
      for (std::size_t j = 0; j < n; ++j) words[j] = Word{pi(j), rng.next()};

      const auto want = engine.route_words(words, scratch);
      std::vector<Word> want_out(want.outputs.begin(), want.outputs.end());

      ControlSchedule schedule;
      engine.solve(pi, scratch, schedule);
      const auto got = engine.apply_words(schedule, words, scratch);
      ASSERT_EQ(got.self_routed, want.self_routed) << "m=" << m;
      for (std::size_t line = 0; line < n; ++line) {
        ASSERT_EQ(got.outputs[line], want_out[line]) << "m=" << m << " line " << line;
      }
    }
  }
}

TEST(CompiledBnb, SolveRefusesFaultOverlaysAndApplyRefusesUnsolved) {
  // A schedule describes the CLEAN fabric: route() under a fault overlay
  // must not capture one (enforced structurally — solve has no faults
  // parameter), and apply() of a never-solved schedule must trip its
  // contract rather than replay garbage.
  const CompiledBnb engine(4);
  RouteScratch scratch;
  Rng rng(0x5021);
  const Permutation pi = random_perm(16, rng);

  ControlSchedule unsolved;
  unsolved.prepare(engine);
  EXPECT_THROW((void)engine.apply(unsolved, pi, scratch), contract_violation);

  ControlSchedule stale;
  engine.solve(pi, scratch, stale);
  // Re-preparing for a different shape invalidates the solved bit.
  const CompiledBnb larger(5);
  stale.prepare(larger);
  EXPECT_FALSE(stale.solved());
  EXPECT_THROW((void)larger.apply(stale, random_perm(32, rng), scratch),
               contract_violation);
}

TEST(CompiledBnb, SteadyStateSolveApplyAndCacheHitsAllocateNothing) {
  // The solve/apply split and the cache-hit replay inherit the engine's
  // zero-allocation guarantee: after warm-up, neither path touches the
  // heap (cache MISSES allocate the new schedule by design).
  const unsigned m = 10;
  const CompiledBnb engine(m);
  RouteScratch scratch;
  ControlSchedule schedule;
  ScheduleCache cache(16, /*shards=*/1);  // one shard: no cross-shard eviction skew

  Rng rng(0x5EED5);
  std::vector<Permutation> perms;
  for (int i = 0; i < 4; ++i) perms.push_back(random_perm(engine.inputs(), rng));

  // Warm-up: size the scratch + schedule, fill the cache.
  engine.solve(perms[0], scratch, schedule);
  (void)engine.apply(schedule, perms[0], scratch);
  for (const auto& pi : perms) (void)cache.route(engine, pi, scratch);

  testhook::reset_allocation_count();
  for (const auto& pi : perms) {
    engine.solve(pi, scratch, schedule);
    const auto out = engine.apply(schedule, pi, scratch);
    ASSERT_TRUE(out.self_routed);
  }
  for (const auto& pi : perms) {
    const auto out = cache.route(engine, pi, scratch);
    ASSERT_TRUE(out.self_routed);
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "steady-state solve/apply and cache hits must not touch the heap";
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(perms.size()));
}

TEST(CompiledBnb, SteadyStateSmallLaneAllocatesNothing) {
  // The register-resident small-N lane inherits the same guarantee one
  // level deeper: after one warm-up, compile_small (solve + flatten into a
  // stack value), apply_small, and the raw apply()/apply8() replays are
  // all heap-free — there is no schedule object to allocate at all.
  const CompiledBnb engine(6);
  RouteScratch scratch;
  Rng rng(0x5EED6);
  std::vector<Permutation> perms;
  for (int i = 0; i < 4; ++i) perms.push_back(random_perm(engine.inputs(), rng));

  // Warm-up: size the scratch.
  (void)engine.apply_small(engine.compile_small(perms[0], scratch), perms[0], scratch);

  testhook::reset_allocation_count();
  std::uint64_t acc = 0;
  for (const auto& pi : perms) {
    const SmallSchedule sched = engine.compile_small(pi, scratch);
    const auto out = engine.apply_small(sched, pi, scratch);
    ASSERT_TRUE(out.self_routed);
    std::uint64_t lanes[8] = {1, 2, 4, 8, 16, 32, 64, 128};
    for (int replay = 0; replay < 64; ++replay) {
      acc ^= sched.apply(acc ^ replay);
      sched.apply8(lanes);
    }
    acc ^= lanes[0];
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "small-lane compile + replay must not touch the heap (acc=" << acc << ")";
}

TEST(StagedBnbRouter, ReplayMatchesArbiterStepColumnByColumn) {
  // step_replay under a solved schedule must move the words exactly as the
  // arbiter-evaluating step() does, at every intermediate column.
  Rng rng(0x5022);
  for (const unsigned m : {2U, 4U, 6U}) {
    const std::size_t n = std::size_t{1} << m;
    const StagedBnbRouter router(m);
    const Permutation pi = random_perm(n, rng);
    std::vector<Word> words(n);
    for (std::size_t j = 0; j < n; ++j) words[j] = Word{pi(j), std::uint64_t{j}};

    RouteScratch scratch;
    ControlSchedule schedule;
    router.plan().solve(pi, scratch, schedule);

    StagedJob stepped = router.start(words);
    StagedJob replayed = router.start(words);
    while (!router.finished(stepped)) {
      router.step(stepped);
      router.step_replay(replayed, schedule);
      ASSERT_EQ(stepped.column, replayed.column) << "m=" << m;
      for (std::size_t line = 0; line < n; ++line) {
        ASSERT_EQ(stepped.lines[line], replayed.lines[line])
            << "m=" << m << " column " << stepped.column << " line " << line;
      }
    }
    ASSERT_TRUE(router.finished(replayed));
  }
}

TEST(GbnTopology, StageUnshuffleTableMatchesNextLine) {
  for (const unsigned m : {2U, 3U, 6U, 9U}) {
    const GbnTopology topo(m);
    for (unsigned stage = 0; stage + 1 < m; ++stage) {
      const auto table = topo.stage_unshuffle(stage);
      ASSERT_EQ(table.size(), topo.inputs()) << "m=" << m;
      for (std::size_t line = 0; line < topo.inputs(); ++line) {
        ASSERT_EQ(table[line], topo.next_line(stage, line))
            << "m=" << m << " stage " << stage;
      }
    }
  }
}

}  // namespace
}  // namespace bnb
