#include "perm/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "perm/classes.hpp"

namespace bnb {
namespace {

TEST(Generators, Reversal) {
  const Permutation p = reversal_perm(6);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(p(i), 5 - i);
}

TEST(Generators, RandomIsReproducible) {
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(random_perm(64, a), random_perm(64, b));
}

TEST(Generators, RandomCoversManyPermutations) {
  Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) seen.insert(random_perm(6, rng).to_string());
  EXPECT_GT(seen.size(), 30U);  // 720 possible; near-certain with 50 draws
}

TEST(Generators, BitReversalInvolution) {
  for (std::size_t n : {2UL, 4UL, 8UL, 64UL, 256UL}) {
    const Permutation p = bit_reversal_perm(n);
    EXPECT_TRUE(p.compose(p).is_identity());
  }
}

TEST(Generators, BitReversal8) {
  const Permutation p = bit_reversal_perm(8);
  EXPECT_EQ(p(1), 4U);  // 001 -> 100
  EXPECT_EQ(p(3), 6U);  // 011 -> 110
  EXPECT_EQ(p(7), 7U);
}

TEST(Generators, PerfectShuffleRotatesBitsLeft) {
  const Permutation p = perfect_shuffle_perm(8);
  // i = b2 b1 b0 -> b1 b0 b2.
  EXPECT_EQ(p(0b100), 0b001U);
  EXPECT_EQ(p(0b001), 0b010U);
  EXPECT_EQ(p(0b110), 0b101U);
}

TEST(Generators, UnshuffleInvertsShuffle) {
  for (std::size_t n : {2UL, 8UL, 32UL, 128UL}) {
    EXPECT_TRUE(perfect_shuffle_perm(n).compose(unshuffle_perm(n)).is_identity());
  }
}

TEST(Generators, ButterflySwapsEndBits) {
  const Permutation p = butterfly_perm(8);
  EXPECT_EQ(p(0b001), 0b100U);
  EXPECT_EQ(p(0b100), 0b001U);
  EXPECT_EQ(p(0b101), 0b101U);
  EXPECT_EQ(p(0b010), 0b010U);
  EXPECT_TRUE(p.compose(p).is_identity());
}

TEST(Generators, ExchangeComplementsBits) {
  const Permutation p = exchange_perm(8);
  EXPECT_EQ(p(0), 7U);
  EXPECT_EQ(p(5), 2U);
  EXPECT_TRUE(p.compose(p).is_identity());
  EXPECT_EQ(p.fixed_points(), 0U);
}

TEST(Generators, RotationWrapsAround) {
  const Permutation p = rotation_perm(8, 3);
  EXPECT_EQ(p(0), 3U);
  EXPECT_EQ(p(6), 1U);
  EXPECT_TRUE(rotation_perm(8, 0).is_identity());
  EXPECT_TRUE(rotation_perm(8, 8).is_identity());
}

TEST(Generators, TransposeIsMatrixTranspose) {
  // 16 = 4x4 row-major: element (r,c) at 4r+c goes to 4c+r.
  const Permutation p = transpose_perm(16);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(p(4 * r + c), 4 * c + r);
    }
  }
  EXPECT_TRUE(p.compose(p).is_identity());
  EXPECT_THROW(transpose_perm(8), contract_violation);  // odd bit count
}

TEST(Generators, BpcIdentityAndReversalSpecialCases) {
  const unsigned id_bits[] = {0, 1, 2};
  EXPECT_TRUE(bpc_perm(8, id_bits, 0).is_identity());
  // Complementing all bits = exchange permutation.
  EXPECT_EQ(bpc_perm(8, id_bits, 7), exchange_perm(8));
  // Reversing bit order = bit-reversal permutation.
  const unsigned rev_bits[] = {2, 1, 0};
  EXPECT_EQ(bpc_perm(8, rev_bits, 0), bit_reversal_perm(8));
}

TEST(Generators, RandomBpcIsValidAndReproducible) {
  Rng a(5);
  Rng b(5);
  const Permutation pa = random_bpc_perm(64, a);
  const Permutation pb = random_bpc_perm(64, b);
  EXPECT_EQ(pa, pb);
}

TEST(Generators, DerangementHasNoFixedPoints) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(random_derangement(16, rng).fixed_points(), 0U);
  }
}

TEST(Generators, PairwiseSwap) {
  const Permutation p = pairwise_swap_perm(6);
  EXPECT_EQ(p(0), 1U);
  EXPECT_EQ(p(1), 0U);
  EXPECT_EQ(p(4), 5U);
  EXPECT_TRUE(p.compose(p).is_identity());
}

TEST(PermFamilies, AllFamiliesProduceValidPermutations) {
  for (const auto f : all_perm_families()) {
    for (std::size_t n : {2UL, 4UL, 8UL, 16UL, 64UL}) {
      const Permutation p = make_perm(f, n, 7);
      EXPECT_EQ(p.size(), n) << perm_family_name(f);
    }
  }
}

TEST(PermFamilies, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto f : all_perm_families()) names.insert(perm_family_name(f));
  EXPECT_EQ(names.size(), all_perm_families().size());
}

TEST(PermFamilies, RandomFamiliesVaryWithSeed) {
  EXPECT_NE(make_perm(PermFamily::kRandom, 64, 1), make_perm(PermFamily::kRandom, 64, 2));
}

}  // namespace
}  // namespace bnb
