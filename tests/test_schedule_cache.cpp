// ScheduleCache correctness: cached-hit routes must be BIT-IDENTICAL to
// cold routes (exhaustive m <= 3, randomized to m = 12, across every
// kernel tier this host supports — schedules are tier-invariant, so one
// cache may even serve plans pinned to different tiers), fault overlays
// and ControlTrace capture must BYPASS the cache (fault semantics are
// never served from, or recorded into, it), LRU eviction must be
// deterministic with one shard, and one cache must stay coherent under
// concurrent mixed hit/miss traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "alloc_count_hook.hpp"
#include "common/rng.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "core/schedule_cache.hpp"
#include "core/small_schedule.hpp"
#include "fault/fault_model.hpp"
#include "fault/injection.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;
using kernels::KernelSet;

void expect_same_output(const CompiledBnb::Output& got, const CompiledBnb::Output& want,
                        std::size_t n, const char* label) {
  ASSERT_EQ(got.self_routed, want.self_routed) << label;
  for (std::size_t line = 0; line < n; ++line) {
    ASSERT_EQ(got.dest[line], want.dest[line]) << label << " dest[" << line << "]";
    ASSERT_EQ(got.outputs[line].address, want.outputs[line].address)
        << label << " address at line " << line;
    ASSERT_EQ(got.outputs[line].payload, want.outputs[line].payload)
        << label << " payload at line " << line;
  }
}

/// Route `pi` cold, then twice through the cache (miss-fill, then hit) on
/// every supported tier, demanding bit-identical output each time.  The
/// cache is shared across the tiers, so a hit may replay a schedule that a
/// DIFFERENT tier solved — the strongest form of the tier-invariance claim.
void expect_cached_equivalence(unsigned m, const Permutation& pi) {
  const std::size_t n = std::size_t{1} << m;
  ScheduleCache cache(64);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    const CompiledBnb plan(m, set);
    RouteScratch scratch;
    const auto cold = plan.route(pi, scratch);
    std::vector<std::uint32_t> cold_dest(cold.dest.begin(), cold.dest.end());
    std::vector<Word> cold_out(cold.outputs.begin(), cold.outputs.end());

    const auto before = cache.stats();
    const auto first = cache.route(plan, pi, scratch);
    ASSERT_EQ(first.self_routed, cold.self_routed) << set->name;
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(first.dest[line], cold_dest[line]) << set->name;
      ASSERT_EQ(first.outputs[line].address, cold_out[line].address) << set->name;
      ASSERT_EQ(first.outputs[line].payload, cold_out[line].payload) << set->name;
    }

    const auto mid = cache.stats();
    const auto warm = cache.route(plan, pi, scratch);
    const auto after = cache.stats();
    ASSERT_EQ(after.hits, mid.hits + 1)
        << set->name << ": second identical route must be a cache hit";
    ASSERT_EQ(after.misses, mid.misses) << set->name;
    // The first tier misses; every later tier hits the shared schedule.
    ASSERT_EQ(mid.misses + mid.hits, before.misses + before.hits + 1) << set->name;

    ASSERT_EQ(warm.self_routed, cold.self_routed) << set->name;
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(warm.dest[line], cold_dest[line])
          << set->name << " warm dest[" << line << "]";
      ASSERT_EQ(warm.outputs[line].address, cold_out[line].address)
          << set->name << " warm address at line " << line;
      ASSERT_EQ(warm.outputs[line].payload, cold_out[line].payload)
          << set->name << " warm payload at line " << line;
    }
  }
}

// ---- digest ------------------------------------------------------------

TEST(ScheduleCache, DigestIsDeterministicAndDiscriminates) {
  Rng rng(0xCAC4E01);
  const Permutation a = random_perm(256, rng);
  EXPECT_EQ(digest_permutation(a), digest_permutation(a));

  // Every lexicographic m=3 permutation gets a distinct digest, and so do
  // identity permutations of different sizes (the size is mixed in).
  std::vector<PermutationDigest> seen;
  Permutation pi = identity_perm(8);
  do {
    seen.push_back(digest_permutation(pi));
  } while (pi.next_lexicographic());
  ASSERT_EQ(seen.size(), 40320U);
  std::sort(seen.begin(), seen.end(), [](const auto& x, const auto& y) {
    return x.hi != y.hi ? x.hi < y.hi : x.lo < y.lo;
  });
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  EXPECT_FALSE(digest_permutation(identity_perm(8)) ==
               digest_permutation(identity_perm(16)));
}

// ---- hit equivalence ---------------------------------------------------

TEST(ScheduleCache, CachedRoutesBitIdenticalExhaustiveSmallM) {
  for (unsigned m = 1; m <= 3; ++m) {
    Permutation pi = identity_perm(std::size_t{1} << m);
    do {
      expect_cached_equivalence(m, pi);
    } while (pi.next_lexicographic());
  }
}

TEST(ScheduleCache, CachedRoutesBitIdenticalRandomizedUpToM12) {
  Rng rng(0xCAC4E02);
  for (const unsigned m : {4U, 6U, 8U, 10U, 12U}) {
    const int reps = m <= 8 ? 3 : 2;
    for (int r = 0; r < reps; ++r) {
      expect_cached_equivalence(m, random_perm(std::size_t{1} << m, rng));
    }
  }
}

// ---- fault / trace bypass ----------------------------------------------

TEST(ScheduleCache, FaultRoutesBypassAndNeverPolluteTheCache) {
  Rng rng(0xCAC4E03);
  const unsigned m = 4;
  const std::size_t n = std::size_t{1} << m;
  const Permutation pi = random_perm(n, rng);

  for (const FaultSpec& spec : FaultModel::all_single_faults(m)) {
    FaultModel model(m);
    model.add(spec);
    const EngineFaults overlay = compile_engine_faults(model);
    if (overlay.empty()) continue;

    ScheduleCache cache(16);
    const CompiledBnb plan(m);
    RouteScratch scratch;

    // Reference: the fused engine under the same overlay.
    const auto want = plan.route(pi, scratch, nullptr, &overlay);
    std::vector<std::uint32_t> want_dest(want.dest.begin(), want.dest.end());
    std::vector<Word> want_out(want.outputs.begin(), want.outputs.end());

    const auto got = cache.route(plan, pi, scratch, nullptr, &overlay);
    ASSERT_EQ(got.self_routed, want.self_routed);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(got.dest[line], want_dest[line]);
      ASSERT_EQ(got.outputs[line].address, want_out[line].address);
      ASSERT_EQ(got.outputs[line].payload, want_out[line].payload);
    }

    const auto stats = cache.stats();
    EXPECT_EQ(stats.bypasses, 1U) << "a faulty route must bypass the cache";
    EXPECT_EQ(stats.hits + stats.misses, 0U);
    EXPECT_EQ(stats.entries, 0U) << "a faulty route must never be cached";

    // The clean route afterwards must be a genuine miss (no pollution) and
    // must match the clean fused engine, not the faulty delivery.
    RouteScratch clean_scratch;
    const auto clean_want = plan.route(pi, clean_scratch);
    std::vector<std::uint32_t> clean_dest(clean_want.dest.begin(), clean_want.dest.end());
    const auto clean_got = cache.route(plan, pi, scratch);
    EXPECT_EQ(cache.stats().misses, 1U);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(clean_got.dest[line], clean_dest[line]);
    }

    // ... and the faulty route after THAT still bypasses the now-warm cache.
    const auto faulty_again = cache.route(plan, pi, scratch, nullptr, &overlay);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(faulty_again.dest[line], want_dest[line])
          << "fault semantics served from the cache";
    }
    EXPECT_EQ(cache.stats().bypasses, 2U);
  }
}

TEST(ScheduleCache, TraceRoutesBypassTheCache) {
  Rng rng(0xCAC4E04);
  const unsigned m = 5;
  const Permutation pi = random_perm(std::size_t{1} << m, rng);
  const CompiledBnb plan(m);
  ScheduleCache cache(16);
  RouteScratch scratch;

  ControlTrace want_trace;
  (void)plan.route(pi, scratch, &want_trace);

  ControlTrace got_trace;
  (void)cache.route(plan, pi, scratch, &got_trace);
  EXPECT_EQ(got_trace.column_controls, want_trace.column_controls);
  EXPECT_EQ(cache.stats().bypasses, 1U);
  EXPECT_EQ(cache.stats().entries, 0U);

  // Even with the schedule already cached, a trace request bypasses: the
  // replay path has no arbiters to observe.
  (void)cache.route(plan, pi, scratch);
  ASSERT_EQ(cache.stats().entries, 1U);
  ControlTrace after_warm;
  (void)cache.route(plan, pi, scratch, &after_warm);
  EXPECT_EQ(after_warm.column_controls, want_trace.column_controls);
  EXPECT_EQ(cache.stats().bypasses, 2U);
}

// ---- LRU / sharding ----------------------------------------------------

TEST(ScheduleCache, SingleShardLruEvictsOldestAndKeepsTouched) {
  Rng rng(0xCAC4E05);
  const unsigned m = 4;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  std::vector<Permutation> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(random_perm(std::size_t{1} << m, rng));

  ScheduleCache cache(4, /*shards=*/1);
  for (int i = 0; i < 4; ++i) (void)cache.route(plan, pool[i], scratch);
  ASSERT_EQ(cache.size(), 4U);
  ASSERT_EQ(cache.stats().evictions, 0U);

  // Touch pool[0] so pool[1] is the LRU entry, then overflow with pool[4].
  (void)cache.route(plan, pool[0], scratch);
  EXPECT_EQ(cache.stats().hits, 1U);
  (void)cache.route(plan, pool[4], scratch);
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.size(), 4U);

  // pool[0] survived its touch; pool[1] was evicted and must miss again.
  const auto before = cache.stats();
  (void)cache.route(plan, pool[0], scratch);
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  (void)cache.route(plan, pool[1], scratch);
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(ScheduleCache, ClearDropsEntriesAndKeepsCounters) {
  Rng rng(0xCAC4E06);
  const unsigned m = 4;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(8, /*shards=*/1);
  for (int i = 0; i < 3; ++i) (void)cache.route(plan, random_perm(16, rng), scratch);
  ASSERT_EQ(cache.size(), 3U);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_EQ(cache.capacity(), 8U);
}

// ---- concurrency -------------------------------------------------------

TEST(ScheduleCache, ConcurrentMixedHitMissTrafficStaysCoherent) {
  // One small sharded cache, several threads hammering an overlapping pool
  // larger than capacity: constant hits, misses, racing inserts of the
  // same digest, and evictions — every delivered result must still equal
  // the cold reference.  Run under the tsan preset, this is the data-race
  // proof for the sharded LRU.
  Rng rng(0xCAC4E07);
  const unsigned m = 6;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  const std::size_t pool_size = 24;
  std::vector<Permutation> pool;
  std::vector<std::vector<std::uint32_t>> want;
  {
    RouteScratch scratch;
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(random_perm(n, rng));
      const auto out = plan.route(pool.back(), scratch);
      want.emplace_back(out.dest.begin(), out.dest.end());
    }
  }

  ScheduleCache cache(8, /*shards=*/4);  // far smaller than the pool: evict constantly
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RouteScratch scratch;
      for (int i = 0; i < kIters; ++i) {
        const std::size_t idx = (static_cast<std::size_t>(t) * 7 + i * 13) % pool_size;
        const auto out = cache.route(plan, pool[idx], scratch);
        for (std::size_t j = 0; j < n; ++j) {
          if (out.dest[j] != want[idx][j]) {
            ++mismatches[t];
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(stats.hits, 0U);
  EXPECT_GT(stats.misses, 0U);
  EXPECT_GT(stats.evictions, 0U) << "capacity 8 over a 24-perm pool must evict";
  EXPECT_LE(cache.size(), cache.capacity());
}

// ---- small lane --------------------------------------------------------

TEST(ScheduleCache, SmallLaneFindInsertRoundTripAndCrossLaneMiss) {
  // find_small/insert_small share the LRU entries and counters with the
  // general lane; a digest held by one lane is a counted miss for the
  // other (never a type confusion).
  Rng rng(0xCAC4E08);
  const CompiledBnb plan(4);
  RouteScratch scratch;
  ScheduleCache cache(8, /*shards=*/1);

  const Permutation a = random_perm(16, rng);
  const PermutationDigest da = digest_permutation(a);
  SmallSchedule out;
  ASSERT_FALSE(cache.find_small(da, out));
  EXPECT_EQ(cache.stats().misses, 1U);

  const SmallSchedule compiled = plan.compile_small(a, scratch);
  cache.insert_small(da, compiled);
  EXPECT_EQ(cache.size(), 1U);
  ASSERT_TRUE(cache.find_small(da, out));
  EXPECT_EQ(cache.stats().hits, 1U);
  ASSERT_TRUE(out.solved());
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(out.line_of_input(j), compiled.line_of_input(j)) << "input " << j;
  }

  // General-lane lookup of a small-lane entry: a miss, not a crash.
  EXPECT_EQ(cache.find(da), nullptr);
  EXPECT_EQ(cache.stats().misses, 2U);

  // And the mirror image: a general-lane entry misses the small lane.
  const Permutation b = random_perm(16, rng);
  const PermutationDigest db = digest_permutation(b);
  auto schedule = std::make_shared<ControlSchedule>();
  plan.solve(b, scratch, *schedule);
  cache.insert(db, schedule);
  EXPECT_FALSE(cache.find_small(db, out));
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_NE(cache.find(db), nullptr);
}

TEST(ScheduleCache, SmallLaneRouteCountsHitsMissesAndEvictions) {
  // route() on a small-capable plan takes the small lane end to end, with
  // the same observable hit/miss/eviction accounting as the general lane.
  Rng rng(0xCAC4E09);
  const unsigned m = 5;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(2, /*shards=*/1);  // tiny: deterministic LRU eviction

  const Permutation a = random_perm(n, rng);
  const Permutation b = random_perm(n, rng);
  const Permutation c = random_perm(n, rng);

  (void)cache.route(plan, a, scratch);
  (void)cache.route(plan, b, scratch);
  EXPECT_EQ(cache.stats().misses, 2U);
  (void)cache.route(plan, a, scratch);  // hit; promotes a, leaves b as LRU
  EXPECT_EQ(cache.stats().hits, 1U);
  (void)cache.route(plan, c, scratch);  // full shard: evicts b
  EXPECT_EQ(cache.stats().evictions, 1U);
  (void)cache.route(plan, b, scratch);  // evicted: misses again
  EXPECT_EQ(cache.stats().misses, 4U);
  EXPECT_LE(cache.size(), 2U);
}

TEST(ScheduleCache, SmallLaneWarmHitsAllocateNothing) {
  // The whole point of the value-type lane: a warm small-N route is
  // find_small (stack copy) + apply_small (register replay into the
  // prepared scratch) — zero heap traffic, no shared_ptr churn.
  Rng rng(0xCAC4E0A);
  const unsigned m = 6;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(16, /*shards=*/1);

  std::vector<Permutation> perms;
  for (int i = 0; i < 4; ++i) perms.push_back(random_perm(plan.inputs(), rng));
  for (const auto& pi : perms) (void)cache.route(plan, pi, scratch);  // warm-up fill

  const auto before = cache.stats();
  testhook::reset_allocation_count();
  for (int round = 0; round < 8; ++round) {
    for (const auto& pi : perms) {
      const auto out = cache.route(plan, pi, scratch);
      ASSERT_TRUE(out.self_routed);
    }
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "warm small-lane hits must not touch the heap";
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 8 * perms.size());
  EXPECT_EQ(after.misses, before.misses);
}

TEST(ScheduleCache, SmallLaneFaultAndTraceRoutesBypassAndNeverInsert) {
  // Satellite of the quarantine contract at m <= kMaxM: a fault-injected
  // or traced route on a small-capable plan must bypass the small lane —
  // no hit, no insert, no cached fault semantics — and an already-warm
  // small-lane entry must not serve such a route.
  Rng rng(0xCAC4E0B);
  for (const unsigned m : {4U, 6U}) {  // both ends of the small lane
    const std::size_t n = std::size_t{1} << m;
    const CompiledBnb plan(m);
    ASSERT_TRUE(plan.small_capable());
    RouteScratch scratch;
    ScheduleCache cache(16, /*shards=*/1);
    const Permutation pi = random_perm(n, rng);
    const PermutationDigest digest = digest_permutation(pi);

    FaultModel model(m);
    model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
    const EngineFaults overlay = compile_engine_faults(model);
    ASSERT_FALSE(overlay.empty());

    // Cold fault route: bypass, empty cache, small lane never consulted.
    (void)cache.route(plan, pi, scratch, nullptr, &overlay);
    EXPECT_EQ(cache.stats().bypasses, 1U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 0U) << "m=" << m;
    SmallSchedule probe;
    EXPECT_FALSE(cache.find_small(digest, probe))
        << "m=" << m << ": a fault route must not have filled the small lane";

    // Cold trace route: same contract.
    ControlTrace trace;
    (void)cache.route(plan, pi, scratch, &trace);
    EXPECT_EQ(cache.stats().bypasses, 2U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 0U) << "m=" << m;

    // Warm the small lane with the clean schedule, then demand that fault
    // and trace routes still bypass it — fault semantics are never served
    // from a cached replay, and the entry must survive untouched.
    const auto clean = cache.route(plan, pi, scratch);
    ASSERT_EQ(cache.stats().entries, 1U) << "m=" << m;
    const auto faulty = cache.route(plan, pi, scratch, nullptr, &overlay);
    EXPECT_EQ(cache.stats().bypasses, 3U) << "m=" << m;
    (void)cache.route(plan, pi, scratch, &trace);
    EXPECT_EQ(cache.stats().bypasses, 4U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 1U) << "m=" << m;

    // The faulty delivery must match the fused engine under the overlay,
    // not the clean cached replay.
    const auto want = plan.route(pi, scratch, nullptr, &overlay);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(faulty.dest[line], want.dest[line])
          << "m=" << m << ": fault semantics served from the small lane";
    }
    (void)clean;
  }
}

// ---- quarantine ---------------------------------------------------------

TEST(ScheduleCache, InvalidateDropsEitherLaneAndCountsQuarantine) {
  Rng rng(0xCAC4E0C);
  const CompiledBnb small_plan(5);
  const CompiledBnb general_plan(7);
  RouteScratch scratch;
  ScheduleCache cache(16, /*shards=*/1);

  // One entry per lane.
  const Permutation a = random_perm(32, rng);
  const PermutationDigest da = digest_permutation(a);
  cache.insert_small(da, small_plan.compile_small(a, scratch));
  const Permutation b = random_perm(128, rng);
  const PermutationDigest db = digest_permutation(b);
  auto schedule = std::make_shared<ControlSchedule>();
  RouteScratch general_scratch;
  general_plan.solve(b, general_scratch, *schedule);
  cache.insert(db, schedule);
  ASSERT_EQ(cache.stats().entries, 2U);

  // Small-lane quarantine.
  EXPECT_TRUE(cache.invalidate(da));
  EXPECT_EQ(cache.stats().quarantined, 1U);
  EXPECT_EQ(cache.stats().entries, 1U);
  SmallSchedule out;
  EXPECT_FALSE(cache.find_small(da, out));

  // General-lane quarantine.
  EXPECT_TRUE(cache.invalidate(db));
  EXPECT_EQ(cache.stats().quarantined, 2U);
  EXPECT_EQ(cache.stats().entries, 0U);
  EXPECT_EQ(cache.find(db), nullptr);

  // Quarantining an absent digest is a counted no-op on every counter.
  const auto before = cache.stats();
  EXPECT_FALSE(cache.invalidate(da));
  const auto after = cache.stats();
  EXPECT_EQ(after.quarantined, before.quarantined);
  EXPECT_EQ(after.entries, 0U);
}

}  // namespace
