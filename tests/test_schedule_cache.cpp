// ScheduleCache correctness: cached-hit routes must be BIT-IDENTICAL to
// cold routes (exhaustive m <= 3, randomized to m = 12, across every
// kernel tier this host supports — schedules are tier-invariant, so one
// cache may even serve plans pinned to different tiers), fault overlays
// and ControlTrace capture must BYPASS the cache (fault semantics are
// never served from, or recorded into, it), clock/second-chance eviction
// must spare recently-hit entries, warm hits in BOTH lanes must be
// allocation-free, and one cache must stay coherent under concurrent
// mixed hit/miss traffic and under invalidate() racing a reader storm
// (the seqlock proof, run under the tsan preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "alloc_count_hook.hpp"
#include "common/rng.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "core/schedule_cache.hpp"
#include "core/small_schedule.hpp"
#include "fault/fault_model.hpp"
#include "fault/injection.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;
using kernels::KernelSet;

/// Route `pi` cold, then twice through the cache (miss-fill, then hit) on
/// every supported tier, demanding bit-identical output each time.  The
/// cache is shared across the tiers, so a hit may replay a schedule that a
/// DIFFERENT tier solved — the strongest form of the tier-invariance claim.
void expect_cached_equivalence(unsigned m, const Permutation& pi) {
  const std::size_t n = std::size_t{1} << m;
  ScheduleCache cache(64);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    const CompiledBnb plan(m, set);
    RouteScratch scratch;
    const auto cold = plan.route(pi, scratch);
    std::vector<std::uint32_t> cold_dest(cold.dest.begin(), cold.dest.end());
    std::vector<Word> cold_out(cold.outputs.begin(), cold.outputs.end());

    const auto before = cache.stats();
    const auto first = cache.route(plan, pi, scratch);
    ASSERT_EQ(first.self_routed, cold.self_routed) << set->name;
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(first.dest[line], cold_dest[line]) << set->name;
      ASSERT_EQ(first.outputs[line].address, cold_out[line].address) << set->name;
      ASSERT_EQ(first.outputs[line].payload, cold_out[line].payload) << set->name;
    }

    const auto mid = cache.stats();
    const auto warm = cache.route(plan, pi, scratch);
    const auto after = cache.stats();
    ASSERT_EQ(after.hits, mid.hits + 1)
        << set->name << ": second identical route must be a cache hit";
    ASSERT_EQ(after.misses, mid.misses) << set->name;
    // The first tier misses; every later tier hits the shared schedule.
    ASSERT_EQ(mid.misses + mid.hits, before.misses + before.hits + 1) << set->name;

    ASSERT_EQ(warm.self_routed, cold.self_routed) << set->name;
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(warm.dest[line], cold_dest[line])
          << set->name << " warm dest[" << line << "]";
      ASSERT_EQ(warm.outputs[line].address, cold_out[line].address)
          << set->name << " warm address at line " << line;
      ASSERT_EQ(warm.outputs[line].payload, cold_out[line].payload)
          << set->name << " warm payload at line " << line;
    }
  }
}

// ---- digest ------------------------------------------------------------

TEST(ScheduleCache, DigestIsDeterministicAndDiscriminates) {
  Rng rng(0xCAC4E01);
  const Permutation a = random_perm(256, rng);
  EXPECT_EQ(digest_permutation(a), digest_permutation(a));

  // Every lexicographic m=3 permutation gets a distinct digest, and so do
  // identity permutations of different sizes (the size is mixed in).
  std::vector<PermutationDigest> seen;
  Permutation pi = identity_perm(8);
  do {
    seen.push_back(digest_permutation(pi));
  } while (pi.next_lexicographic());
  ASSERT_EQ(seen.size(), 40320U);
  std::sort(seen.begin(), seen.end(), [](const auto& x, const auto& y) {
    return x.hi != y.hi ? x.hi < y.hi : x.lo < y.lo;
  });
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  EXPECT_FALSE(digest_permutation(identity_perm(8)) ==
               digest_permutation(identity_perm(16)));
}

// ---- hit equivalence ---------------------------------------------------

TEST(ScheduleCache, CachedRoutesBitIdenticalExhaustiveSmallM) {
  for (unsigned m = 1; m <= 3; ++m) {
    Permutation pi = identity_perm(std::size_t{1} << m);
    do {
      expect_cached_equivalence(m, pi);
    } while (pi.next_lexicographic());
  }
}

TEST(ScheduleCache, CachedRoutesBitIdenticalRandomizedUpToM12) {
  Rng rng(0xCAC4E02);
  for (const unsigned m : {4U, 6U, 8U, 10U, 12U}) {
    const int reps = m <= 8 ? 3 : 2;
    for (int r = 0; r < reps; ++r) {
      expect_cached_equivalence(m, random_perm(std::size_t{1} << m, rng));
    }
  }
}

// ---- fault / trace bypass ----------------------------------------------

TEST(ScheduleCache, FaultRoutesBypassAndNeverPolluteTheCache) {
  Rng rng(0xCAC4E03);
  const unsigned m = 4;
  const std::size_t n = std::size_t{1} << m;
  const Permutation pi = random_perm(n, rng);

  for (const FaultSpec& spec : FaultModel::all_single_faults(m)) {
    FaultModel model(m);
    model.add(spec);
    const EngineFaults overlay = compile_engine_faults(model);
    if (overlay.empty()) continue;

    ScheduleCache cache(16);
    const CompiledBnb plan(m);
    RouteScratch scratch;

    // Reference: the fused engine under the same overlay.
    const auto want = plan.route(pi, scratch, nullptr, &overlay);
    std::vector<std::uint32_t> want_dest(want.dest.begin(), want.dest.end());
    std::vector<Word> want_out(want.outputs.begin(), want.outputs.end());

    const auto got = cache.route(plan, pi, scratch, nullptr, &overlay);
    ASSERT_EQ(got.self_routed, want.self_routed);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(got.dest[line], want_dest[line]);
      ASSERT_EQ(got.outputs[line].address, want_out[line].address);
      ASSERT_EQ(got.outputs[line].payload, want_out[line].payload);
    }

    const auto stats = cache.stats();
    EXPECT_EQ(stats.bypasses, 1U) << "a faulty route must bypass the cache";
    EXPECT_EQ(stats.hits + stats.misses, 0U);
    EXPECT_EQ(stats.entries, 0U) << "a faulty route must never be cached";

    // The clean route afterwards must be a genuine miss (no pollution) and
    // must match the clean fused engine, not the faulty delivery.
    RouteScratch clean_scratch;
    const auto clean_want = plan.route(pi, clean_scratch);
    std::vector<std::uint32_t> clean_dest(clean_want.dest.begin(), clean_want.dest.end());
    const auto clean_got = cache.route(plan, pi, scratch);
    EXPECT_EQ(cache.stats().misses, 1U);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(clean_got.dest[line], clean_dest[line]);
    }

    // ... and the faulty route after THAT still bypasses the now-warm cache.
    const auto faulty_again = cache.route(plan, pi, scratch, nullptr, &overlay);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(faulty_again.dest[line], want_dest[line])
          << "fault semantics served from the cache";
    }
    EXPECT_EQ(cache.stats().bypasses, 2U);
  }
}

TEST(ScheduleCache, TraceRoutesBypassTheCache) {
  Rng rng(0xCAC4E04);
  const unsigned m = 5;
  const Permutation pi = random_perm(std::size_t{1} << m, rng);
  const CompiledBnb plan(m);
  ScheduleCache cache(16);
  RouteScratch scratch;

  ControlTrace want_trace;
  (void)plan.route(pi, scratch, &want_trace);

  ControlTrace got_trace;
  (void)cache.route(plan, pi, scratch, &got_trace);
  EXPECT_EQ(got_trace.column_controls, want_trace.column_controls);
  EXPECT_EQ(cache.stats().bypasses, 1U);
  EXPECT_EQ(cache.stats().entries, 0U);

  // Even with the schedule already cached, a trace request bypasses: the
  // replay path has no arbiters to observe.
  (void)cache.route(plan, pi, scratch);
  ASSERT_EQ(cache.stats().entries, 1U);
  ControlTrace after_warm;
  (void)cache.route(plan, pi, scratch, &after_warm);
  EXPECT_EQ(after_warm.column_controls, want_trace.column_controls);
  EXPECT_EQ(cache.stats().bypasses, 2U);
}

// ---- clock eviction ----------------------------------------------------

TEST(ScheduleCache, ClockEvictionSparesTouchedEntriesAndEvictsOneUntouched) {
  // Second-chance semantics: a hit sets an entry's reference bit, and the
  // eviction sweep skips referenced entries (clearing the bit) before
  // reclaiming the first unreferenced one.  Unlike strict LRU the victim's
  // identity depends on table layout, so the contract pinned here is the
  // one callers can rely on: the touched entry survives, exactly one
  // untouched entry is reclaimed.
  Rng rng(0xCAC4E05);
  const unsigned m = 4;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  std::vector<Permutation> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(random_perm(std::size_t{1} << m, rng));

  ScheduleCache cache(4, /*shards=*/1);
  for (int i = 0; i < 4; ++i) (void)cache.route(plan, pool[i], scratch);
  ASSERT_EQ(cache.size(), 4U);
  ASSERT_EQ(cache.stats().evictions, 0U);

  // Touch pool[0] (sets its reference bit), then overflow with pool[4].
  (void)cache.route(plan, pool[0], scratch);
  EXPECT_EQ(cache.stats().hits, 1U);
  (void)cache.route(plan, pool[4], scratch);
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.size(), 4U);

  // The touched entry survived the sweep ...
  const auto before = cache.stats();
  (void)cache.route(plan, pool[0], scratch);
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  // ... and exactly one of the untouched entries was reclaimed.
  SmallSchedule probe;
  int missing = 0;
  for (int i = 1; i <= 3; ++i) {
    if (!cache.find_small(digest_permutation(pool[i]), probe)) ++missing;
  }
  EXPECT_EQ(missing, 1) << "exactly one untouched entry must have been evicted";
}

TEST(ScheduleCache, ClearDropsEntriesAndKeepsCounters) {
  Rng rng(0xCAC4E06);
  const unsigned m = 4;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(8, /*shards=*/1);
  for (int i = 0; i < 3; ++i) (void)cache.route(plan, random_perm(16, rng), scratch);
  ASSERT_EQ(cache.size(), 3U);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_EQ(cache.capacity(), 8U);
}

// ---- concurrency -------------------------------------------------------

TEST(ScheduleCache, ConcurrentMixedHitMissTrafficStaysCoherent) {
  // One small sharded cache, several threads hammering an overlapping pool
  // larger than capacity: constant hits, misses, racing inserts of the
  // same digest, and evictions — every delivered result must still equal
  // the cold reference.  Run under the tsan preset, this is the data-race
  // proof for the sharded LRU.
  Rng rng(0xCAC4E07);
  const unsigned m = 6;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  const std::size_t pool_size = 24;
  std::vector<Permutation> pool;
  std::vector<std::vector<std::uint32_t>> want;
  {
    RouteScratch scratch;
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(random_perm(n, rng));
      const auto out = plan.route(pool.back(), scratch);
      want.emplace_back(out.dest.begin(), out.dest.end());
    }
  }

  ScheduleCache cache(8, /*shards=*/4);  // far smaller than the pool: evict constantly
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RouteScratch scratch;
      for (int i = 0; i < kIters; ++i) {
        const std::size_t idx = (static_cast<std::size_t>(t) * 7 + i * 13) % pool_size;
        const auto out = cache.route(plan, pool[idx], scratch);
        for (std::size_t j = 0; j < n; ++j) {
          if (out.dest[j] != want[idx][j]) {
            ++mismatches[t];
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(stats.hits, 0U);
  EXPECT_GT(stats.misses, 0U);
  EXPECT_GT(stats.evictions, 0U) << "capacity 8 over a 24-perm pool must evict";
  EXPECT_LE(cache.size(), cache.capacity());
}

// ---- small lane --------------------------------------------------------

TEST(ScheduleCache, SmallLaneFindInsertRoundTripAndCrossLaneMiss) {
  // find_small/insert_small share the LRU entries and counters with the
  // general lane; a digest held by one lane is a counted miss for the
  // other (never a type confusion).
  Rng rng(0xCAC4E08);
  const CompiledBnb plan(4);
  RouteScratch scratch;
  ScheduleCache cache(8, /*shards=*/1);

  const Permutation a = random_perm(16, rng);
  const PermutationDigest da = digest_permutation(a);
  SmallSchedule out;
  ASSERT_FALSE(cache.find_small(da, out));
  EXPECT_EQ(cache.stats().misses, 1U);

  const SmallSchedule compiled = plan.compile_small(a, scratch);
  cache.insert_small(da, compiled);
  EXPECT_EQ(cache.size(), 1U);
  ASSERT_TRUE(cache.find_small(da, out));
  EXPECT_EQ(cache.stats().hits, 1U);
  ASSERT_TRUE(out.solved());
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(out.line_of_input(j), compiled.line_of_input(j)) << "input " << j;
  }

  // General-lane lookup of a small-lane entry: a miss, not a crash.
  ControlSchedule fetched;
  EXPECT_FALSE(cache.find(da, fetched));
  EXPECT_EQ(cache.stats().misses, 2U);

  // And the mirror image: a general-lane entry misses the small lane.
  const Permutation b = random_perm(16, rng);
  const PermutationDigest db = digest_permutation(b);
  ControlSchedule schedule;
  plan.solve(b, scratch, schedule);
  cache.insert(db, schedule);
  EXPECT_FALSE(cache.find_small(db, out));
  EXPECT_EQ(cache.stats().misses, 3U);
  EXPECT_TRUE(cache.find(db, fetched));
  EXPECT_TRUE(fetched.solved());
}

TEST(ScheduleCache, SmallLaneRouteCountsHitsMissesAndEvictions) {
  // route() on a small-capable plan takes the small lane end to end, with
  // the same observable hit/miss/eviction accounting as the general lane.
  Rng rng(0xCAC4E09);
  const unsigned m = 5;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(2, /*shards=*/1);  // tiny: deterministic LRU eviction

  const Permutation a = random_perm(n, rng);
  const Permutation b = random_perm(n, rng);
  const Permutation c = random_perm(n, rng);

  (void)cache.route(plan, a, scratch);
  (void)cache.route(plan, b, scratch);
  EXPECT_EQ(cache.stats().misses, 2U);
  (void)cache.route(plan, a, scratch);  // hit; promotes a, leaves b as LRU
  EXPECT_EQ(cache.stats().hits, 1U);
  (void)cache.route(plan, c, scratch);  // full shard: evicts b
  EXPECT_EQ(cache.stats().evictions, 1U);
  (void)cache.route(plan, b, scratch);  // evicted: misses again
  EXPECT_EQ(cache.stats().misses, 4U);
  EXPECT_LE(cache.size(), 2U);
}

TEST(ScheduleCache, SmallLaneWarmHitsAllocateNothing) {
  // The whole point of the value-type lane: a warm small-N route is
  // find_small (stack copy) + apply_small (register replay into the
  // prepared scratch) — zero heap traffic, no shared_ptr churn.
  Rng rng(0xCAC4E0A);
  const unsigned m = 6;
  const CompiledBnb plan(m);
  RouteScratch scratch;
  ScheduleCache cache(16, /*shards=*/1);

  std::vector<Permutation> perms;
  for (int i = 0; i < 4; ++i) perms.push_back(random_perm(plan.inputs(), rng));
  for (const auto& pi : perms) (void)cache.route(plan, pi, scratch);  // warm-up fill

  const auto before = cache.stats();
  testhook::reset_allocation_count();
  for (int round = 0; round < 8; ++round) {
    for (const auto& pi : perms) {
      const auto out = cache.route(plan, pi, scratch);
      ASSERT_TRUE(out.self_routed);
    }
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "warm small-lane hits must not touch the heap";
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 8 * perms.size());
  EXPECT_EQ(after.misses, before.misses);
}

TEST(ScheduleCache, SmallLaneFaultAndTraceRoutesBypassAndNeverInsert) {
  // Satellite of the quarantine contract at m <= kMaxM: a fault-injected
  // or traced route on a small-capable plan must bypass the small lane —
  // no hit, no insert, no cached fault semantics — and an already-warm
  // small-lane entry must not serve such a route.
  Rng rng(0xCAC4E0B);
  for (const unsigned m : {4U, 6U}) {  // both ends of the small lane
    const std::size_t n = std::size_t{1} << m;
    const CompiledBnb plan(m);
    ASSERT_TRUE(plan.small_capable());
    RouteScratch scratch;
    ScheduleCache cache(16, /*shards=*/1);
    const Permutation pi = random_perm(n, rng);
    const PermutationDigest digest = digest_permutation(pi);

    FaultModel model(m);
    model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
    const EngineFaults overlay = compile_engine_faults(model);
    ASSERT_FALSE(overlay.empty());

    // Cold fault route: bypass, empty cache, small lane never consulted.
    (void)cache.route(plan, pi, scratch, nullptr, &overlay);
    EXPECT_EQ(cache.stats().bypasses, 1U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 0U) << "m=" << m;
    SmallSchedule probe;
    EXPECT_FALSE(cache.find_small(digest, probe))
        << "m=" << m << ": a fault route must not have filled the small lane";

    // Cold trace route: same contract.
    ControlTrace trace;
    (void)cache.route(plan, pi, scratch, &trace);
    EXPECT_EQ(cache.stats().bypasses, 2U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 0U) << "m=" << m;

    // Warm the small lane with the clean schedule, then demand that fault
    // and trace routes still bypass it — fault semantics are never served
    // from a cached replay, and the entry must survive untouched.
    const auto clean = cache.route(plan, pi, scratch);
    ASSERT_EQ(cache.stats().entries, 1U) << "m=" << m;
    const auto faulty = cache.route(plan, pi, scratch, nullptr, &overlay);
    EXPECT_EQ(cache.stats().bypasses, 3U) << "m=" << m;
    (void)cache.route(plan, pi, scratch, &trace);
    EXPECT_EQ(cache.stats().bypasses, 4U) << "m=" << m;
    EXPECT_EQ(cache.stats().entries, 1U) << "m=" << m;

    // The faulty delivery must match the fused engine under the overlay,
    // not the clean cached replay.
    const auto want = plan.route(pi, scratch, nullptr, &overlay);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(faulty.dest[line], want.dest[line])
          << "m=" << m << ": fault semantics served from the small lane";
    }
    (void)clean;
  }
}

// ---- general lane: zero-alloc warm path ---------------------------------

TEST(ScheduleCache, GeneralLaneWarmHitsAllocateNothing) {
  // The flat-table promise: a warm general-lane route is probe + seqlock
  // validate + zero-copy replay straight from the slot's buffer — no
  // shared_ptr, no copies, no heap traffic at all.
  Rng rng(0xCAC4E0D);
  const unsigned m = 7;  // smallest general-lane size
  const CompiledBnb plan(m);
  ASSERT_FALSE(plan.small_capable());
  RouteScratch scratch;
  scratch.prepare(plan);
  ScheduleCache cache(16, /*shards=*/1);

  std::vector<Permutation> perms;
  for (int i = 0; i < 4; ++i) perms.push_back(random_perm(plan.inputs(), rng));
  std::vector<PermutationDigest> digests;
  for (const auto& pi : perms) digests.push_back(digest_permutation(pi));
  for (const auto& pi : perms) (void)cache.route(plan, pi, scratch);  // fill

  const auto before = cache.stats();
  testhook::reset_allocation_count();
  for (int round = 0; round < 8; ++round) {
    for (const auto& pi : perms) {
      const auto out = cache.route(plan, pi, scratch);
      ASSERT_TRUE(out.self_routed);
    }
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "warm general-lane route() hits must not touch the heap";
  const auto mid = cache.stats();
  EXPECT_EQ(mid.hits, before.hits + 8 * perms.size());
  EXPECT_EQ(mid.misses, before.misses);

  // The explicit replay() entry point is equally clean ...
  testhook::reset_allocation_count();
  for (std::size_t i = 0; i < perms.size(); ++i) {
    CompiledBnb::Output out{};
    ASSERT_TRUE(cache.replay(plan, digests[i], perms[i], scratch, out));
    ASSERT_TRUE(out.self_routed);
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "replay() hits must not touch the heap";

  // ... and find()'s copy-out is allocation-free once the destination has
  // been shaped by a first fetch.
  ControlSchedule fetched;
  ASSERT_TRUE(cache.find(digests[0], fetched));  // shapes `fetched` (may alloc)
  testhook::reset_allocation_count();
  for (std::size_t i = 0; i < perms.size(); ++i) {
    ASSERT_TRUE(cache.find(digests[i], fetched));
  }
  EXPECT_EQ(testhook::allocation_count(), 0U)
      << "same-shape find() copy-outs must reuse the destination's buffers";
}

// ---- general lane: fault / trace bypass ---------------------------------

TEST(ScheduleCache, GeneralLaneFaultAndTraceRoutesBypassBothLanes) {
  // Mirror of the small-lane bypass pin at general-lane size: a fault or
  // trace route at m = 7 must bypass the flat table entirely — no probe
  // hit, no insert — even when the digest is already resident.
  Rng rng(0xCAC4E0E);
  const unsigned m = 7;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  ASSERT_FALSE(plan.small_capable());
  RouteScratch scratch;
  ScheduleCache cache(16, /*shards=*/1);
  const Permutation pi = random_perm(n, rng);
  const PermutationDigest digest = digest_permutation(pi);

  FaultModel model(m);
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
  const EngineFaults overlay = compile_engine_faults(model);
  ASSERT_FALSE(overlay.empty());

  // Cold fault and trace routes: bypass, nothing cached.
  (void)cache.route(plan, pi, scratch, nullptr, &overlay);
  EXPECT_EQ(cache.stats().bypasses, 1U);
  EXPECT_EQ(cache.stats().entries, 0U);
  ControlTrace trace;
  (void)cache.route(plan, pi, scratch, &trace);
  EXPECT_EQ(cache.stats().bypasses, 2U);
  EXPECT_EQ(cache.stats().entries, 0U);
  ControlSchedule probe;
  EXPECT_FALSE(cache.find(digest, probe))
      << "a bypassed route must not have filled the general lane";

  // Warm the entry, then demand fault/trace routes still bypass it.
  (void)cache.route(plan, pi, scratch);
  ASSERT_EQ(cache.stats().entries, 1U);
  const auto faulty = cache.route(plan, pi, scratch, nullptr, &overlay);
  EXPECT_EQ(cache.stats().bypasses, 3U);
  (void)cache.route(plan, pi, scratch, &trace);
  EXPECT_EQ(cache.stats().bypasses, 4U);
  EXPECT_EQ(cache.stats().entries, 1U);

  // Fault semantics must come from the fused engine, not the cached replay.
  const auto want = plan.route(pi, scratch, nullptr, &overlay);
  for (std::size_t line = 0; line < n; ++line) {
    ASSERT_EQ(faulty.dest[line], want.dest[line])
        << "fault semantics served from the general lane";
  }
}

// ---- invalidate vs reader storm -----------------------------------------

TEST(ScheduleCache, InvalidateDuringConcurrentReaderStormStaysCoherent) {
  // The seqlock's hard case: a writer repeatedly quarantines and re-inserts
  // hot digests while readers replay them lock-free.  Every reader delivery
  // must be bit-identical to the cold reference — a torn read may only ever
  // become a counted miss (re-solve), never a wrong route.  Run under the
  // tsan preset this is the data-race proof for invalidate().
  Rng rng(0xCAC4E0F);
  const unsigned m = 7;
  const std::size_t n = std::size_t{1} << m;
  const CompiledBnb plan(m);
  const std::size_t pool_size = 4;
  std::vector<Permutation> pool;
  std::vector<PermutationDigest> digests;
  std::vector<std::vector<std::uint32_t>> want;
  {
    RouteScratch scratch;
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(random_perm(n, rng));
      digests.push_back(digest_permutation(pool.back()));
      const auto out = plan.route(pool.back(), scratch);
      want.emplace_back(out.dest.begin(), out.dest.end());
    }
  }

  ScheduleCache cache(16, /*shards=*/1);
  {
    RouteScratch scratch;
    for (const auto& pi : pool) (void)cache.route(plan, pi, scratch);
  }

  constexpr int kReaders = 3;
  constexpr int kReaderIters = 300;
  constexpr int kWriterIters = 200;
  std::vector<int> mismatches(kReaders, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&, t] {
      RouteScratch scratch;
      for (int i = 0; i < kReaderIters; ++i) {
        const std::size_t idx = (static_cast<std::size_t>(t) + i) % pool_size;
        const auto out = cache.route(plan, pool[idx], scratch);
        for (std::size_t j = 0; j < n; ++j) {
          if (out.dest[j] != want[idx][j]) {
            ++mismatches[t];
            break;
          }
        }
      }
    });
  }
  workers.emplace_back([&] {
    // The storm: quarantine a hot digest, then re-solve it back in, so
    // readers race slot teardown AND slot rewrite in every combination.
    RouteScratch scratch;
    for (int i = 0; i < kWriterIters; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) % pool_size;
      (void)cache.invalidate(digests[idx]);
      (void)cache.route(plan, pool[idx], scratch);
    }
  });
  for (auto& w : workers) w.join();

  for (int t = 0; t < kReaders; ++t) EXPECT_EQ(mismatches[t], 0) << "reader " << t;
  const auto stats = cache.stats();
  EXPECT_GT(stats.quarantined, 0U);
  // Writer re-inserts everything it quarantined, so the survivors must all
  // still replay correctly single-threaded.
  {
    RouteScratch scratch;
    for (std::size_t i = 0; i < pool_size; ++i) {
      const auto out = cache.route(plan, pool[i], scratch);
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(out.dest[j], want[i][j]) << "post-storm replay diverged";
      }
    }
  }
  EXPECT_LE(cache.size(), cache.capacity());
}

// ---- quarantine ---------------------------------------------------------

TEST(ScheduleCache, InvalidateDropsEitherLaneAndCountsQuarantine) {
  Rng rng(0xCAC4E0C);
  const CompiledBnb small_plan(5);
  const CompiledBnb general_plan(7);
  RouteScratch scratch;
  ScheduleCache cache(16, /*shards=*/1);

  // One entry per lane.
  const Permutation a = random_perm(32, rng);
  const PermutationDigest da = digest_permutation(a);
  cache.insert_small(da, small_plan.compile_small(a, scratch));
  const Permutation b = random_perm(128, rng);
  const PermutationDigest db = digest_permutation(b);
  ControlSchedule schedule;
  RouteScratch general_scratch;
  general_plan.solve(b, general_scratch, schedule);
  cache.insert(db, schedule);
  ASSERT_EQ(cache.stats().entries, 2U);

  // Small-lane quarantine.
  EXPECT_TRUE(cache.invalidate(da));
  EXPECT_EQ(cache.stats().quarantined, 1U);
  EXPECT_EQ(cache.stats().entries, 1U);
  SmallSchedule out;
  EXPECT_FALSE(cache.find_small(da, out));

  // General-lane quarantine.
  EXPECT_TRUE(cache.invalidate(db));
  EXPECT_EQ(cache.stats().quarantined, 2U);
  EXPECT_EQ(cache.stats().entries, 0U);
  ControlSchedule gone;
  EXPECT_FALSE(cache.find(db, gone));

  // Quarantining an absent digest is a counted no-op on every counter.
  const auto before = cache.stats();
  EXPECT_FALSE(cache.invalidate(da));
  const auto after = cache.stats();
  EXPECT_EQ(after.quarantined, before.quarantined);
  EXPECT_EQ(after.entries, 0U);
}

}  // namespace
