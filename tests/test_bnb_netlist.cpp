// Structural model: constructed hardware counts vs Eq. 6, measured critical
// path vs Eqs. 7-9.
#include "core/bnb_netlist.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "core/complexity.hpp"

namespace bnb {
namespace {

TEST(BnbNetlist, CensusMatchesEq6Exactly) {
  for (const unsigned w : {0U, 1U, 8U, 32U}) {
    for (unsigned m = 1; m <= 12; ++m) {
      const BnbNetlist net(m, w);
      const auto measured = net.census();
      const auto predicted = model::bnb_cost_exact(pow2(m), w);
      EXPECT_EQ(measured.switches_2x2, predicted.sw) << "m=" << m << " w=" << w;
      EXPECT_EQ(measured.function_nodes, predicted.fn) << "m=" << m << " w=" << w;
      EXPECT_EQ(measured.adder_nodes, 0U);
      EXPECT_EQ(measured.comparators, 0U);
    }
  }
}

TEST(BnbNetlist, CriticalPathSwitchUnitsMatchEq7) {
  // Evaluate with D_FN = 0 so the path maximizes pure switch depth.
  for (unsigned m = 1; m <= 9; ++m) {
    const BnbNetlist net(m, 0);
    const auto r = net.critical_path(1.0, 0.0);
    EXPECT_EQ(r.delay, static_cast<double>(model::bnb_delay_sw_units(pow2(m))))
        << "m=" << m;
  }
}

TEST(BnbNetlist, CriticalPathFnUnitsMatchEq8) {
  for (unsigned m = 1; m <= 9; ++m) {
    const BnbNetlist net(m, 0);
    const auto r = net.critical_path(0.0, 1.0);
    EXPECT_EQ(r.delay, static_cast<double>(model::bnb_delay_fn_units(pow2(m))))
        << "m=" << m;
  }
}

TEST(BnbNetlist, CriticalPathCombinedMatchesEq9) {
  // With both unit delays at 1 the critical path carries exactly the unit
  // mix of Eq. 9 (the worst path goes through every arbiter root).
  for (unsigned m = 1; m <= 9; ++m) {
    const BnbNetlist net(m, 0);
    const auto r = net.critical_path(1.0, 1.0);
    const auto d = model::bnb_delay(pow2(m));
    EXPECT_EQ(r.delay, static_cast<double>(d.sw + d.fn)) << "m=" << m;
    EXPECT_EQ(r.units.sw, d.sw) << "m=" << m;
    EXPECT_EQ(r.units.fn, d.fn) << "m=" << m;
    EXPECT_EQ(r.units.add, 0U);
  }
}

TEST(BnbNetlist, CriticalPathScalesLinearlyInUnitDelays) {
  const BnbNetlist net(6, 0);
  const auto d = model::bnb_delay(64);
  const auto r = net.critical_path(2.5, 4.0);
  EXPECT_DOUBLE_EQ(r.delay, 2.5 * static_cast<double>(d.sw) + 4.0 * static_cast<double>(d.fn));
}

TEST(BnbNetlist, GraphSizeIsPlausible) {
  // Node count = sources + 2*fn nodes + one switch node per 2x2 switch of
  // the control slice.
  const unsigned m = 6;
  const BnbNetlist net(m, 0);
  const auto g = net.build_delay_graph();
  const auto cost = model::bnb_cost_exact(pow2(m), 0);
  // One-bit-slice switch count: Eq. 6 at w=0 divided by slices... instead
  // count directly: sum over stages of N/2 switches per nested stage.
  std::uint64_t control_switches = 0;
  for (unsigned i = 0; i < m; ++i) control_switches += (pow2(m) / 2) * (m - i);
  EXPECT_EQ(g.node_count(), pow2(m) + 2 * cost.fn + control_switches);
}

TEST(BnbNetlist, PayloadWidthDoesNotChangeDelay) {
  // Extra slices switch in parallel under the same flags.
  const BnbNetlist narrow(5, 0);
  const BnbNetlist wide(5, 64);
  EXPECT_EQ(narrow.critical_path(1.0, 1.0).delay, wide.critical_path(1.0, 1.0).delay);
}

}  // namespace
}  // namespace bnb
