// bnb.schedstore.v1 persistence: save → load must replay bit-identically
// in BOTH lanes across every kernel tier this host supports (the format's
// kernel-invariance promise, with apply8 re-bound from the loading
// process's dispatch), a store the build cannot read — missing, truncated,
// wrong magic, unsupported version, header or record CRC damage — must
// throw schedule_store_error from load() with nothing inserted, and
// warm_start() must serve mmap-backed hits that promote into the table
// while per-record corruption degrades to a counted miss, never a wrong
// route.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "core/schedule_cache.hpp"
#include "core/schedule_store.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;
using kernels::KernelSet;

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

/// One general-lane (m=7) and one small-lane (m=5) permutation with their
/// cold-reference destinations, plus a saved store holding both schedules.
struct Fixture {
  Permutation general_pi{Permutation(identity_perm(128))};
  Permutation small_pi{Permutation(identity_perm(32))};
  std::vector<std::uint32_t> general_want;
  std::vector<std::uint32_t> small_want;
  std::string path;
  std::size_t saved = 0;
};

Fixture make_saved_store(const char* filename, std::uint64_t seed) {
  Fixture fx;
  Rng rng(seed);
  fx.general_pi = random_perm(128, rng);
  fx.small_pi = random_perm(32, rng);
  fx.path = temp_path(filename);

  const CompiledBnb general_plan(7);
  const CompiledBnb small_plan(5);
  RouteScratch scratch;
  ScheduleCache cache(16);
  const auto g = cache.route(general_plan, fx.general_pi, scratch);
  fx.general_want.assign(g.dest.begin(), g.dest.end());
  const auto s = cache.route(small_plan, fx.small_pi, scratch);
  fx.small_want.assign(s.dest.begin(), s.dest.end());
  fx.saved = cache.save(fx.path);
  EXPECT_EQ(fx.saved, 2U);
  EXPECT_EQ(cache.stats().store_saved, 2U);
  return fx;
}

void expect_replays_bit_identical(ScheduleCache& cache, const Fixture& fx,
                                  const KernelSet* set, const char* label) {
  const CompiledBnb general_plan(7, set);
  const CompiledBnb small_plan(5, set);
  RouteScratch scratch;
  const auto before = cache.stats();
  const auto g = cache.route(general_plan, fx.general_pi, scratch);
  for (std::size_t j = 0; j < fx.general_want.size(); ++j) {
    ASSERT_EQ(g.dest[j], fx.general_want[j]) << label << " general dest[" << j << "]";
  }
  const auto s = cache.route(small_plan, fx.small_pi, scratch);
  for (std::size_t j = 0; j < fx.small_want.size(); ++j) {
    ASSERT_EQ(s.dest[j], fx.small_want[j]) << label << " small dest[" << j << "]";
  }
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 2)
      << label << ": loaded schedules must replay as hits, not re-solves";
  EXPECT_EQ(after.misses, before.misses) << label;
}

// ---- round trip ---------------------------------------------------------

TEST(ScheduleStore, SaveLoadRoundTripBitIdenticalAcrossTiers) {
  const Fixture fx = make_saved_store("roundtrip.bnbstore", 0x5702E01);

  // One save, one load per tier: the stored bytes are tier-invariant, so a
  // store written under the default dispatch must replay bit-identically
  // on every tier, with the small lane's apply8 re-bound at load time.
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    ScheduleCache cache(16);
    ASSERT_EQ(cache.load(fx.path), 2U) << set->name;
    EXPECT_EQ(cache.size(), 2U) << set->name;
    EXPECT_EQ(cache.stats().store_loaded, 2U) << set->name;
    expect_replays_bit_identical(cache, fx, set, set->name);
  }
}

TEST(ScheduleStore, SaveAnEmptyCacheAndLoadItBack) {
  const std::string path = temp_path("empty.bnbstore");
  ScheduleCache cache(8);
  EXPECT_EQ(cache.save(path), 0U);
  ScheduleCache fresh(8);
  EXPECT_EQ(fresh.load(path), 0U);
  EXPECT_EQ(fresh.size(), 0U);
}

// ---- refusal diagnostics ------------------------------------------------

TEST(ScheduleStore, LoadMissingFileThrows) {
  ScheduleCache cache(8);
  EXPECT_THROW((void)cache.load(temp_path("no-such-file.bnbstore")),
               schedule_store_error);
}

TEST(ScheduleStore, LoadRejectsForeignAndDamagedHeaders) {
  const Fixture fx = make_saved_store("headers.bnbstore", 0x5702E02);
  const std::vector<unsigned char> good = read_file(fx.path);
  ASSERT_GE(good.size(), 64U);

  // Not a store at all (bad magic).
  const std::string bad_magic = temp_path("bad-magic.bnbstore");
  write_file(bad_magic, {'n', 'o', 't', ' ', 'a', ' ', 's', 't', 'o', 'r', 'e'});
  ScheduleCache cache(8);
  EXPECT_THROW((void)cache.load(bad_magic), schedule_store_error);

  // Truncated mid-header.
  const std::string truncated = temp_path("truncated.bnbstore");
  write_file(truncated, std::vector<unsigned char>(good.begin(), good.begin() + 16));
  EXPECT_THROW((void)cache.load(truncated), schedule_store_error);

  // A future version with a correct CRC: refused as unsupported, so the
  // version check (not the CRC) is what fires.
  std::vector<unsigned char> v2 = good;
  const std::uint32_t version = 2;
  std::memcpy(v2.data() + 8, &version, 4);
  const std::uint32_t crc = crc32(v2.data(), 28);
  std::memcpy(v2.data() + 28, &crc, 4);
  const std::string v2_path = temp_path("v2.bnbstore");
  write_file(v2_path, v2);
  try {
    (void)cache.load(v2_path);
    FAIL() << "version 2 must be refused";
  } catch (const schedule_store_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version 2"), std::string::npos)
        << e.what();
  }

  // Header bytes damaged without fixing the CRC.
  std::vector<unsigned char> damaged = good;
  damaged[24] ^= 0xFF;  // reserved field, covered by the header CRC
  const std::string damaged_path = temp_path("damaged-header.bnbstore");
  write_file(damaged_path, damaged);
  EXPECT_THROW((void)cache.load(damaged_path), schedule_store_error);

  // Nothing was inserted by any refused load.
  EXPECT_EQ(cache.size(), 0U);
}

TEST(ScheduleStore, LoadRejectsRecordCrcDamageAtomically) {
  const Fixture fx = make_saved_store("record-crc.bnbstore", 0x5702E03);
  std::vector<unsigned char> bytes = read_file(fx.path);
  ASSERT_GT(bytes.size(), 65U);
  bytes[64] ^= 0x01;  // first payload byte of record 0
  const std::string path = temp_path("record-crc-damaged.bnbstore");
  write_file(path, bytes);

  ScheduleCache cache(8);
  try {
    (void)cache.load(path);
    FAIL() << "payload damage must be refused";
  } catch (const schedule_store_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << e.what();
  }
  // load() validates everything before touching the table: the intact
  // record 1 must NOT have been inserted either.
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.stats().store_loaded, 0U);
}

// ---- warm start ---------------------------------------------------------

TEST(ScheduleStore, WarmStartServesHitsAndPromotesIntoTheTable) {
  const Fixture fx = make_saved_store("warm.bnbstore", 0x5702E04);

  ScheduleCache cache(16);
  ASSERT_EQ(cache.warm_start(fx.path), 2U);
  EXPECT_TRUE(cache.has_warm_store());
  EXPECT_EQ(cache.size(), 0U) << "warm_start is lazy: nothing promoted yet";

  // First routes hit the mmap-backed store and promote into the table.
  expect_replays_bit_identical(cache, fx, nullptr, "warm-start");
  EXPECT_EQ(cache.size(), 2U) << "warm hits must promote";
  EXPECT_GE(cache.stats().store_loaded, 2U);

  // Second routes hit the flat table directly.
  expect_replays_bit_identical(cache, fx, nullptr, "post-promotion");
}

TEST(ScheduleStore, WarmStartRecordCorruptionDegradesToAMiss) {
  const Fixture fx = make_saved_store("warm-corrupt.bnbstore", 0x5702E05);
  std::vector<unsigned char> bytes = read_file(fx.path);
  ASSERT_GT(bytes.size(), 65U);
  bytes[64] ^= 0x01;  // damage record 0's payload; header stays valid
  bytes[bytes.size() - 1] ^= 0x01;  // and the last record's tail
  const std::string path = temp_path("warm-corrupt-damaged.bnbstore");
  write_file(path, bytes);

  ScheduleCache cache(16);
  ASSERT_EQ(cache.warm_start(path), 2U)
      << "record CRCs are lazy for warm_start; the header is intact";

  // Both lookups fail verify(), fall through to a counted miss, re-solve,
  // and still deliver the correct routes.
  const CompiledBnb general_plan(7);
  const CompiledBnb small_plan(5);
  RouteScratch scratch;
  const auto g = cache.route(general_plan, fx.general_pi, scratch);
  for (std::size_t j = 0; j < fx.general_want.size(); ++j) {
    ASSERT_EQ(g.dest[j], fx.general_want[j]) << "corrupt warm record changed a route";
  }
  const auto s = cache.route(small_plan, fx.small_pi, scratch);
  for (std::size_t j = 0; j < fx.small_want.size(); ++j) {
    ASSERT_EQ(s.dest[j], fx.small_want[j]) << "corrupt warm record changed a route";
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0U);
  EXPECT_EQ(stats.misses, 2U) << "corruption must degrade to counted misses";
  EXPECT_EQ(cache.size(), 2U) << "the re-solves repopulate the table";
}

TEST(ScheduleStore, WarmStoreLookupAndVerifyDirectly) {
  const Fixture fx = make_saved_store("direct.bnbstore", 0x5702E06);
  const WarmStore store(fx.path);
  ASSERT_EQ(store.records(), 2U);

  const PermutationDigest dg = digest_permutation(fx.general_pi);
  const WarmStore::Record* rg = store.lookup(dg);
  ASSERT_NE(rg, nullptr);
  EXPECT_EQ(rg->kind, WarmStore::kGeneralRecord);
  EXPECT_EQ(rg->m, 7U);
  EXPECT_TRUE(store.verify(*rg));

  const PermutationDigest ds = digest_permutation(fx.small_pi);
  const WarmStore::Record* rs = store.lookup(ds);
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->kind, WarmStore::kSmallRecord);
  EXPECT_EQ(rs->m, 5U);
  EXPECT_TRUE(store.verify(*rs));

  EXPECT_EQ(store.lookup(PermutationDigest{1, 2}), nullptr);
}

}  // namespace
