// Golden constants.
//
// The formula-vs-constructed tests would miss a bug that changed a formula
// AND its builder symmetrically.  These hand-derived constants (checked
// against the paper's equations by hand, several also against the worked
// examples in the text) pin the absolute values down.
#include <gtest/gtest.h>

#include "baselines/batcher.hpp"
#include "baselines/benes.hpp"
#include "baselines/bitonic.hpp"
#include "core/bnb_netlist.hpp"
#include "core/complexity.hpp"
#include "fabric/staged_router.hpp"

namespace bnb {
namespace {

TEST(Golden, BnbSwitchCounts) {
  // Eq. 6 C_SW at w = 0: (N/2) * m(m+1)(2m+1)/6.
  EXPECT_EQ(model::bnb_cost_exact(2, 0).sw, 1U);
  EXPECT_EQ(model::bnb_cost_exact(4, 0).sw, 10U);
  EXPECT_EQ(model::bnb_cost_exact(8, 0).sw, 56U);
  EXPECT_EQ(model::bnb_cost_exact(16, 0).sw, 240U);
  EXPECT_EQ(model::bnb_cost_exact(32, 0).sw, 880U);
  EXPECT_EQ(model::bnb_cost_exact(64, 0).sw, 2912U);
  EXPECT_EQ(model::bnb_cost_exact(1024, 0).sw, 197120U);
  EXPECT_EQ(model::bnb_cost_exact(4096, 0).sw, 1331200U);
}

TEST(Golden, BnbFunctionNodeCounts) {
  // Eq. 6 C_FN: N/2 m^2 - N m + N - 1.
  EXPECT_EQ(model::bnb_cost_exact(2, 0).fn, 0U);
  EXPECT_EQ(model::bnb_cost_exact(4, 0).fn, 3U);
  EXPECT_EQ(model::bnb_cost_exact(8, 0).fn, 19U);
  EXPECT_EQ(model::bnb_cost_exact(16, 0).fn, 79U);
  EXPECT_EQ(model::bnb_cost_exact(32, 0).fn, 271U);
  EXPECT_EQ(model::bnb_cost_exact(1024, 0).fn, 41983U);
}

TEST(Golden, BnbPayloadSwitchCounts) {
  // w = 8 adds (N/2) * 8 * m(m+1)/2 switches.
  EXPECT_EQ(model::bnb_cost_exact(8, 8).sw, 56U + 4 * 8 * 6);
  EXPECT_EQ(model::bnb_cost_exact(256, 8).sw,
            model::bnb_cost_exact(256, 0).sw + 128 * 8 * 36);
}

TEST(Golden, BnbDelays) {
  // Eq. 7 and Eq. 8.
  EXPECT_EQ(model::bnb_delay(8).sw, 6U);
  EXPECT_EQ(model::bnb_delay(8).fn, 14U);
  EXPECT_EQ(model::bnb_delay(64).sw, 21U);
  EXPECT_EQ(model::bnb_delay(64).fn, 100U);
  EXPECT_EQ(model::bnb_delay(1024).sw, 55U);
  EXPECT_EQ(model::bnb_delay(1024).fn, 420U);
  EXPECT_EQ(model::bnb_delay(65536).fn, 1600U);  // m=16: 16*15*20/3
}

TEST(Golden, BatcherCounts) {
  EXPECT_EQ(model::batcher_comparator_count(2), 1U);
  EXPECT_EQ(model::batcher_comparator_count(4), 5U);
  EXPECT_EQ(model::batcher_comparator_count(8), 19U);
  EXPECT_EQ(model::batcher_comparator_count(16), 63U);
  EXPECT_EQ(model::batcher_comparator_count(32), 191U);
  EXPECT_EQ(model::batcher_comparator_count(1024), 24063U);
  EXPECT_EQ(BatcherNetwork(5).depth(), 15U);
  EXPECT_EQ(BatcherNetwork(10).depth(), 55U);
}

TEST(Golden, BitonicCounts) {
  // (N/2) * m(m+1)/2.
  EXPECT_EQ(BitonicNetwork(3).comparator_count(), 24U);
  EXPECT_EQ(BitonicNetwork(5).comparator_count(), 240U);
  EXPECT_EQ(BitonicNetwork(10).comparator_count(), 28160U);
}

TEST(Golden, BenesAndWaksmanSwitches) {
  EXPECT_EQ(BenesNetwork(3, false).switch_count(), 20U);   // 5 stages x 4
  EXPECT_EQ(BenesNetwork(3, true).switch_count(), 17U);    // 8*3 - 8 + 1
  EXPECT_EQ(BenesNetwork(10, false).switch_count(), 9728U);
  EXPECT_EQ(BenesNetwork(10, true).switch_count(), 9217U);
}

TEST(Golden, KoppelmanRows) {
  EXPECT_EQ(model::koppelman_delay_units(1024), 571U);  // 2/3*1000-100+10/3+1
  const auto c = model::koppelman_cost_leading(1024);
  EXPECT_EQ(c.sw, 256000U);
  EXPECT_EQ(c.fn, 51200U);
  EXPECT_EQ(c.add, 102400U);
}

TEST(Golden, Table2PublishedValues) {
  using model::NetworkKind;
  EXPECT_DOUBLE_EQ(model::table2_delay(NetworkKind::kBatcher, 1024), 550.0);
  EXPECT_DOUBLE_EQ(model::table2_delay(NetworkKind::kKoppelman, 1024), 571.0);
  EXPECT_DOUBLE_EQ(model::table2_delay(NetworkKind::kBnb, 1024), 475.0);
}

TEST(Golden, StagedColumnCounts) {
  EXPECT_EQ(StagedBnbRouter(4).total_columns(), 10U);
  EXPECT_EQ(StagedBnbRouter(10).total_columns(), 55U);
  EXPECT_EQ(StagedBatcherRouter(4).total_columns(), 10U);
}

TEST(Golden, MeasuredCensusPinnedValues) {
  // From constructed netlists, not formulas.
  const auto c8 = BnbNetlist(3, 0).census();
  EXPECT_EQ(c8.switches_2x2, 56U);
  EXPECT_EQ(c8.function_nodes, 19U);
  const auto c1024 = BnbNetlist(10, 0).census();
  EXPECT_EQ(c1024.switches_2x2, 197120U);
  EXPECT_EQ(c1024.function_nodes, 41983U);
}

TEST(Golden, NestedArbiterCosts) {
  EXPECT_EQ(model::nested_arbiter_cost(8), 13U);    // A(3) + 2 A(2)
  EXPECT_EQ(model::nested_arbiter_cost(16), 41U);   // 15 + 2*13
  EXPECT_EQ(model::nested_arbiter_cost(32), 113U);  // 31 + 2*41
  EXPECT_EQ(model::nested_arbiter_cost(1024), 8705U);  // 1024*9 - 512 + 1
}

}  // namespace
}  // namespace bnb
