// Physical bit-slice simulation: whole words reassemble correctly after
// travelling as q independent bit planes under broadcast switch settings.
#include "core/bit_sliced.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(BitSliced, ExhaustiveN4MatchesBehavioral) {
  const BitSlicedBnb sliced(2, 6);
  const BnbNetwork net(2);
  Permutation pi(4);
  do {
    std::vector<Word> words(4);
    for (std::size_t j = 0; j < 4; ++j) words[j] = Word{pi(j), 40 + j};
    const auto a = sliced.route_words(words);
    const auto b = net.route_words(words);
    ASSERT_TRUE(a.self_routed) << pi.to_string();
    ASSERT_EQ(a.outputs, b.outputs) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(BitSliced, RandomWordsSurviveSlicing) {
  Rng rng(131);
  for (const unsigned m : {3U, 5U, 8U}) {
    const unsigned w = 16;
    const BitSlicedBnb sliced(m, w);
    const std::size_t n = sliced.inputs();
    const Permutation pi = random_perm(n, rng);
    std::vector<Word> words(n);
    for (std::size_t j = 0; j < n; ++j) {
      words[j] = Word{pi(j), rng.next() & 0xFFFFULL};
    }
    const auto r = sliced.route_words(words);
    ASSERT_TRUE(r.self_routed) << "m=" << m;
    for (std::size_t line = 0; line < n; ++line) {
      EXPECT_EQ(r.outputs[line].payload, words[pi.inverse()(line)].payload);
    }
  }
}

TEST(BitSliced, ZeroPayloadBitsStillRoutesAddresses) {
  Rng rng(132);
  const BitSlicedBnb sliced(6, 0);
  EXPECT_TRUE(sliced.route(random_perm(64, rng)).self_routed);
}

TEST(BitSliced, PayloadWiderThanWiresRejected) {
  const BitSlicedBnb sliced(2, 4);
  std::vector<Word> words(4);
  for (std::size_t j = 0; j < 4; ++j) words[j] = Word{static_cast<std::uint32_t>(j), 0};
  words[0].payload = 0x10;  // needs 5 bits, only 4 wired
  EXPECT_THROW((void)sliced.route_words(words), contract_violation);
}

TEST(BitSliced, BroadcastCountMatchesSwitchCensus) {
  // Every control-plane switch broadcasts to q-1 followers; switches per
  // run: sum over columns of N/2.
  const unsigned m = 4;
  const unsigned w = 3;
  const BitSlicedBnb sliced(m, w);
  const auto r = sliced.route(identity_perm(16));
  std::uint64_t switches = 0;
  for (unsigned i = 0; i < m; ++i) switches += (16 / 2) * (m - i);
  EXPECT_EQ(r.broadcast_signals, switches * (m + w - 1));
}

TEST(BitSliced, AllFamiliesRoute) {
  for (const auto f : all_perm_families()) {
    const BitSlicedBnb sliced(5, 8);
    EXPECT_TRUE(sliced.route(make_perm(f, 32, 17)).self_routed)
        << perm_family_name(f);
  }
}

TEST(BitSliced, FullWidthPayloads) {
  Rng rng(133);
  const BitSlicedBnb sliced(4, 64);
  const Permutation pi = random_perm(16, rng);
  std::vector<Word> words(16);
  for (std::size_t j = 0; j < 16; ++j) words[j] = Word{pi(j), rng.next()};
  const auto r = sliced.route_words(words);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t line = 0; line < 16; ++line) {
    EXPECT_EQ(r.outputs[line].payload, words[pi.inverse()(line)].payload);
  }
}

}  // namespace
}  // namespace bnb
