// The 0/1-principle sorting-network verifier, and formal verification of
// every comparator schedule in the repository.
#include "verify/sorting_checker.hpp"

#include <gtest/gtest.h>

#include "baselines/batcher.hpp"
#include "baselines/bitonic.hpp"
#include "baselines/cellular.hpp"
#include "common/expect.hpp"

namespace bnb {
namespace {

std::vector<std::vector<ComparatorEdge>> batcher_stages(unsigned m) {
  const BatcherNetwork net(m);
  std::vector<std::vector<ComparatorEdge>> stages;
  for (const auto& s : net.stages()) {
    std::vector<ComparatorEdge> stage;
    for (const auto& c : s) stage.push_back(ComparatorEdge{c.low, c.high});
    stages.push_back(std::move(stage));
  }
  return stages;
}

std::vector<std::vector<ComparatorEdge>> bitonic_stages(unsigned m) {
  const BitonicNetwork net(m);
  std::vector<std::vector<ComparatorEdge>> stages;
  for (const auto& s : net.stages()) {
    std::vector<ComparatorEdge> stage;
    for (const auto& c : s) stage.push_back(ComparatorEdge{c.low, c.high});
    stages.push_back(std::move(stage));
  }
  return stages;
}

TEST(SortingChecker, ProvesBatcherOddEvenForAllSizesUpTo64k_Inputs) {
  // Exhaustive over all 2^N boolean inputs; N = 16 covers 65,536 inputs.
  for (const unsigned m : {1U, 2U, 3U, 4U}) {
    const auto result = check_sorting_network(std::size_t{1} << m, batcher_stages(m));
    EXPECT_TRUE(result.sorts) << "m=" << m;
    EXPECT_EQ(result.inputs_covered, std::uint64_t{1} << (std::size_t{1} << m));
  }
}

TEST(SortingChecker, ProvesBitonicForAllSizesUpTo64k_Inputs) {
  for (const unsigned m : {1U, 2U, 3U, 4U}) {
    EXPECT_TRUE(check_sorting_network(std::size_t{1} << m, bitonic_stages(m)).sorts)
        << "m=" << m;
  }
}

TEST(SortingChecker, ProvesOddEvenTranspositionColumns) {
  // The cellular array's schedule: n columns of nearest-neighbor cells.
  const std::size_t n = 9;  // also covers non-power-of-two wire counts
  std::vector<std::vector<ComparatorEdge>> stages;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<ComparatorEdge> stage;
    for (std::size_t i = s % 2; i + 1 < n; i += 2) {
      stage.push_back(ComparatorEdge{static_cast<std::uint32_t>(i),
                                     static_cast<std::uint32_t>(i + 1)});
    }
    stages.push_back(std::move(stage));
  }
  EXPECT_TRUE(check_sorting_network(n, stages).sorts);
}

TEST(SortingChecker, DetectsAMissingComparator) {
  auto stages = batcher_stages(3);
  // Delete one comparator from the last stage: no longer a sorting network.
  ASSERT_FALSE(stages.back().empty());
  stages.back().pop_back();
  const auto result = check_sorting_network(8, stages);
  EXPECT_FALSE(result.sorts);
  ASSERT_TRUE(result.counterexample.has_value());

  // The counterexample must actually fail when simulated directly.
  std::vector<std::uint8_t> v = *result.counterexample;
  for (const auto& stage : stages) {
    for (const auto& c : stage) {
      if (v[c.low] > v[c.high]) std::swap(v[c.low], v[c.high]);
    }
  }
  bool sorted = true;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (v[i] > v[i + 1]) sorted = false;
  }
  EXPECT_FALSE(sorted);
}

TEST(SortingChecker, DetectsTooShortTransposition) {
  // Odd-even transposition with only n-2 columns misses worst cases.
  const std::size_t n = 6;
  std::vector<std::vector<ComparatorEdge>> stages;
  for (std::size_t s = 0; s < n - 2; ++s) {
    std::vector<ComparatorEdge> stage;
    for (std::size_t i = s % 2; i + 1 < n; i += 2) {
      stage.push_back(ComparatorEdge{static_cast<std::uint32_t>(i),
                                     static_cast<std::uint32_t>(i + 1)});
    }
    stages.push_back(std::move(stage));
  }
  EXPECT_FALSE(check_sorting_network(n, stages).sorts);
}

TEST(SortingChecker, EmptyScheduleSortsOnlyTrivially) {
  EXPECT_TRUE(check_sorting_network(1, {}).sorts);
  EXPECT_FALSE(check_sorting_network(2, {}).sorts);
}

TEST(SortingChecker, LimitsEnforced) {
  EXPECT_THROW((void)check_sorting_network(0, {}), contract_violation);
  EXPECT_THROW((void)check_sorting_network(25, {}), contract_violation);
  const std::vector<std::vector<ComparatorEdge>> bad{{ComparatorEdge{0, 5}}};
  EXPECT_THROW((void)check_sorting_network(4, bad), contract_violation);
}

TEST(SortingChecker, TwentyWiresStillFeasible) {
  // 2^20 inputs x 20 wires in one sweep (a million cases, bit-parallel).
  std::vector<std::vector<ComparatorEdge>> stages;
  for (std::size_t s = 0; s < 20; ++s) {
    std::vector<ComparatorEdge> stage;
    for (std::size_t i = s % 2; i + 1 < 20; i += 2) {
      stage.push_back(ComparatorEdge{static_cast<std::uint32_t>(i),
                                     static_cast<std::uint32_t>(i + 1)});
    }
    stages.push_back(std::move(stage));
  }
  const auto result = check_sorting_network(20, stages);
  EXPECT_TRUE(result.sorts);
  EXPECT_EQ(result.inputs_covered, 1ULL << 20);
}

}  // namespace
}  // namespace bnb
