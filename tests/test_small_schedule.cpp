// SmallSchedule correctness: the flattened (mask, delta) butterfly replay
// must be BIT-IDENTICAL to the general engine.  Because every butterfly
// step permutes the 64 state bits, apply() is linear over XOR — so proving
// apply(1 << j) == 1 << route(pi).dest[j] on every single-bit input proves
// the replay for EVERY payload word; we still spot-check dense random
// payloads and the bits-above-N pass-through contract.  Coverage:
// exhaustive m <= 3 (every permutation), randomized + structured m = 4..6,
// on every kernel tier this host supports; apply8() must match eight
// scalar apply() calls lane for lane on each tier; flatten_small of an
// explicitly solved schedule must equal compile_small; apply_small's
// Output must be bit-identical to route/apply; and misuse must trip
// contracts instead of replaying garbage.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "core/small_schedule.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;
using kernels::KernelSet;

/// The mapping apply() must implement, computed independently from the
/// general engine's dest[] array: bit j moves to bit dest[j], bits at
/// positions >= n pass through unchanged.
std::uint64_t expected_apply(const std::vector<std::uint32_t>& dest, std::size_t n,
                             std::uint64_t x) {
  std::uint64_t out = n >= 64 ? 0 : (x & ~((std::uint64_t{1} << n) - 1));
  for (std::size_t j = 0; j < n; ++j) {
    out |= ((x >> j) & 1ULL) << dest[j];
  }
  return out;
}

/// Flatten `pi` on `plan` and demand the replay is bit-identical to the
/// general route: basis vectors (sufficient by XOR-linearity), dense
/// random payloads, the composed line_of_input map, and apply8 against
/// eight scalar applies.
void expect_flat_equivalence(const CompiledBnb& plan, const Permutation& pi, Rng& rng) {
  const std::size_t n = plan.inputs();
  RouteScratch scratch;
  const auto cold = plan.route(pi, scratch);
  const std::vector<std::uint32_t> dest(cold.dest.begin(), cold.dest.end());

  const SmallSchedule sched = plan.compile_small(pi, scratch);
  ASSERT_TRUE(sched.solved()) << plan.kernel_set().name;
  ASSERT_EQ(sched.m(), plan.m()) << plan.kernel_set().name;
  ASSERT_EQ(sched.lines(), n) << plan.kernel_set().name;
  ASSERT_LE(sched.depth(), SmallSchedule::kMaxDepth) << plan.kernel_set().name;

  // Basis vectors: with XOR-linearity this alone proves every payload.
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_EQ(sched.line_of_input(j), dest[j])
        << plan.kernel_set().name << " line_of_input(" << j << ")";
    ASSERT_EQ(sched.apply(std::uint64_t{1} << j), std::uint64_t{1} << dest[j])
        << plan.kernel_set().name << " basis bit " << j;
  }

  // Dense random payloads, including garbage above bit n: the replay must
  // permute the low n bits per dest[] and leave the high bits untouched.
  std::array<std::uint64_t, 8> lanes{};
  for (std::uint64_t& lane : lanes) lane = rng.next();
  for (const std::uint64_t x : lanes) {
    ASSERT_EQ(sched.apply(x), expected_apply(dest, n, x))
        << plan.kernel_set().name << " payload " << x;
  }

  // apply8: eight independent state words through the tier's wide kernel
  // must match eight scalar replays lane for lane.
  std::array<std::uint64_t, 8> wide = lanes;
  sched.apply8(wide.data());
  for (std::size_t lane = 0; lane < wide.size(); ++lane) {
    ASSERT_EQ(wide[lane], sched.apply(lanes[lane]))
        << plan.kernel_set().name << " apply8 lane " << lane;
  }
}

// ---- bit-identity vs the general engine --------------------------------

TEST(SmallSchedule, ExhaustiveBitIdenticalUpToM3) {
  Rng rng(0x5A110001);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    for (unsigned m = 1; m <= 3; ++m) {
      const CompiledBnb plan(m, set);
      Permutation pi = identity_perm(std::size_t{1} << m);
      do {
        expect_flat_equivalence(plan, pi, rng);
      } while (pi.next_lexicographic());
    }
  }
}

TEST(SmallSchedule, RandomizedAndStructuredBitIdenticalM4to6) {
  Rng rng(0x5A110002);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    for (unsigned m = 4; m <= 6; ++m) {
      const std::size_t n = std::size_t{1} << m;
      const CompiledBnb plan(m, set);
      // The structured families the self-routing literature cares about
      // (Omega blockers included) plus uniform-random traffic.
      std::vector<Permutation> perms = {
          identity_perm(n),      reversal_perm(n),        bit_reversal_perm(n),
          perfect_shuffle_perm(n), butterfly_perm(n),     exchange_perm(n),
          rotation_perm(n, n / 3 + 1),
      };
      if (m % 2 == 0) perms.push_back(transpose_perm(n));  // needs a square array
      for (int i = 0; i < 16; ++i) perms.push_back(random_perm(n, rng));
      for (const Permutation& pi : perms) expect_flat_equivalence(plan, pi, rng);
    }
  }
}

// ---- flatten_small of an explicit solve --------------------------------

TEST(SmallSchedule, FlattenSmallMatchesCompileSmall) {
  // compile_small is solve + flatten_small; a caller holding an explicitly
  // solved ControlSchedule must get the identical flat program.
  Rng rng(0x5A110003);
  for (const unsigned m : {2U, 4U, 6U}) {
    const CompiledBnb plan(m);
    RouteScratch scratch;
    const Permutation pi = random_perm(plan.inputs(), rng);

    ControlSchedule schedule;
    plan.solve(pi, scratch, schedule);
    const SmallSchedule from_schedule = plan.flatten_small(schedule);
    const SmallSchedule from_perm = plan.compile_small(pi, scratch);

    ASSERT_EQ(from_schedule.m(), from_perm.m()) << "m=" << m;
    ASSERT_EQ(from_schedule.depth(), from_perm.depth()) << "m=" << m;
    for (std::size_t s = 0; s < from_perm.depth(); ++s) {
      ASSERT_EQ(from_schedule.step_mask(s), from_perm.step_mask(s))
          << "m=" << m << " step " << s;
      ASSERT_EQ(from_schedule.step_delta(s), from_perm.step_delta(s))
          << "m=" << m << " step " << s;
    }
    for (std::size_t j = 0; j < plan.inputs(); ++j) {
      ASSERT_EQ(from_schedule.line_of_input(j), from_perm.line_of_input(j))
          << "m=" << m << " input " << j;
    }
  }
}

// ---- apply_small Output contract ---------------------------------------

TEST(SmallSchedule, ApplySmallOutputBitIdenticalToRouteAndApply) {
  Rng rng(0x5A110004);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    for (unsigned m = 1; m <= 6; ++m) {
      const std::size_t n = std::size_t{1} << m;
      const CompiledBnb plan(m, set);
      RouteScratch scratch;
      const Permutation pi = random_perm(n, rng);

      const auto cold = plan.route(pi, scratch);
      const std::vector<std::uint32_t> dest(cold.dest.begin(), cold.dest.end());
      const std::vector<Word> outputs(cold.outputs.begin(), cold.outputs.end());
      const bool self_routed = cold.self_routed;

      const SmallSchedule sched = plan.compile_small(pi, scratch);
      const auto small = plan.apply_small(sched, pi, scratch);
      ASSERT_EQ(small.self_routed, self_routed) << set->name << " m=" << m;
      for (std::size_t line = 0; line < n; ++line) {
        ASSERT_EQ(small.dest[line], dest[line]) << set->name << " m=" << m;
        ASSERT_EQ(small.outputs[line].address, outputs[line].address)
            << set->name << " m=" << m << " line " << line;
        ASSERT_EQ(small.outputs[line].payload, outputs[line].payload)
            << set->name << " m=" << m << " line " << line;
      }
    }
  }
}

// ---- contracts ----------------------------------------------------------

TEST(SmallSchedule, MisuseTripsContractsInsteadOfReplayingGarbage) {
  Rng rng(0x5A110005);
  RouteScratch scratch;

  // m = 7 is one past the lane: 128 lines no longer fit a state word.
  const CompiledBnb large(SmallSchedule::kMaxM + 1);
  EXPECT_FALSE(large.small_capable());
  const Permutation big_pi = random_perm(large.inputs(), rng);
  EXPECT_THROW((void)large.compile_small(big_pi, scratch), contract_violation);

  // An empty schedule must not replay, scalar or wide.
  const CompiledBnb plan(4);
  const Permutation pi = random_perm(plan.inputs(), rng);
  const SmallSchedule empty;
  EXPECT_FALSE(empty.solved());
  EXPECT_THROW((void)plan.apply_small(empty, pi, scratch), contract_violation);
  std::array<std::uint64_t, 8> lanes{};
  EXPECT_THROW(empty.apply8(lanes.data()), contract_violation);

  // A schedule flattened for another network shape must be rejected.
  const CompiledBnb other(5);
  const SmallSchedule wrong_shape =
      other.compile_small(random_perm(other.inputs(), rng), scratch);
  EXPECT_THROW((void)plan.apply_small(wrong_shape, pi, scratch), contract_violation);

  // flatten_small demands a schedule solved FOR THIS plan.
  ControlSchedule unsolved;
  unsolved.prepare(plan);
  EXPECT_THROW((void)plan.flatten_small(unsolved), contract_violation);
}

}  // namespace
