// Event-driven gate simulation: final-state equivalence with the levelized
// evaluator, settle bounds, and glitch observation.
#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/arbiter.hpp"
#include "core/gate_network.hpp"
#include "perm/generators.hpp"

namespace bnb::sim {
namespace {

TEST(EventSim, ChainPropagatesWithAccumulatedDelay) {
  GateNetlist net;
  const auto a = net.add_input();
  auto x = net.add_not(a);
  x = net.add_not(x);
  x = net.add_not(x);
  const EventSimulator sim(net, EventSimulator::uniform_delays(net, 2.0));
  const auto r = sim.run_transition({false}, {true});
  EXPECT_EQ(r.values, net.evaluate({true}));
  EXPECT_DOUBLE_EQ(r.settle_time, 6.0);  // three gates at 2.0 each
  EXPECT_EQ(r.transitions, 4U);          // input + 3 gates
  EXPECT_EQ(r.glitches, 0U);             // a chain cannot glitch
}

TEST(EventSim, NoInputChangeNoEvents) {
  GateNetlist net;
  const auto a = net.add_input();
  net.add_not(a);
  const EventSimulator sim(net, EventSimulator::uniform_delays(net, 1.0));
  const auto r = sim.run_transition({true}, {true});
  EXPECT_EQ(r.transitions, 0U);
  EXPECT_DOUBLE_EQ(r.settle_time, 0.0);
}

TEST(EventSim, EqualDelayReconvergenceIsPulseFree) {
  // y = AND(a, NOT a) with EQUAL delays: the would-be pulse has zero
  // width, and the coalesced (inertial-style) model suppresses it — the
  // AND re-evaluates at t=1 after the inverter's same-instant update.
  GateNetlist net;
  const auto a = net.add_input();
  const auto na = net.add_not(a);
  const auto y = net.add_and(a, na);
  (void)na;
  const EventSimulator sim(net, EventSimulator::uniform_delays(net, 1.0));
  const auto r = sim.run_transition({false}, {true});
  EXPECT_FALSE(r.values[y]);  // statically 0
  EXPECT_EQ(r.glitches, 0U);  // zero-width pulse filtered
}

TEST(EventSim, GlitchWidthTracksPathSkew) {
  // Slower inverter -> wider pulse -> later settle.
  GateNetlist net;
  const auto a = net.add_input();
  const auto na = net.add_not(a);
  const auto y = net.add_and(a, na);
  (void)y;
  std::vector<double> delays(net.gate_count(), 0.0);
  delays[na] = 5.0;
  delays[y] = 1.0;
  const EventSimulator sim(net, delays);
  const auto r = sim.run_transition({false}, {true});
  EXPECT_DOUBLE_EQ(r.settle_time, 6.0);  // 5 (NOT) + 1 (AND)
  EXPECT_EQ(r.glitches, 2U);
}

TEST(EventSim, MatchesLevelizedOnRandomNetlists) {
  Rng rng(221);
  for (int round = 0; round < 20; ++round) {
    GateNetlist net;
    std::vector<GateNetlist::GateId> pool;
    const std::size_t n_inputs = 3 + rng.below(5);
    for (std::size_t i = 0; i < n_inputs; ++i) pool.push_back(net.add_input());
    for (int g = 0; g < 40; ++g) {
      const auto a = pool[rng.below(pool.size())];
      const auto b = pool[rng.below(pool.size())];
      switch (rng.below(5)) {
        case 0: pool.push_back(net.add_and(a, b)); break;
        case 1: pool.push_back(net.add_or(a, b)); break;
        case 2: pool.push_back(net.add_xor(a, b)); break;
        case 3: pool.push_back(net.add_not(a)); break;
        default: {
          const auto c = pool[rng.below(pool.size())];
          pool.push_back(net.add_mux(a, b, c));
          break;
        }
      }
    }
    const EventSimulator sim(net, EventSimulator::uniform_delays(net, 1.0));
    std::vector<bool> from(n_inputs), to(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      from[i] = rng.flip();
      to[i] = rng.flip();
    }
    const auto r = sim.run_transition(from, to);
    EXPECT_EQ(r.values, net.evaluate(to)) << "round " << round;
    EXPECT_LE(r.settle_time, static_cast<double>(net.depth()));
  }
}

TEST(EventSim, ArbiterSettlesWithinTreeDepth) {
  const Arbiter arb(4);
  GateNetlist net;
  std::vector<GateNetlist::GateId> input_ids(16);
  for (auto& id : input_ids) id = net.add_input();
  (void)arb.build_gates(net, input_ids);

  const EventSimulator sim(net, EventSimulator::uniform_delays(net, 1.0));
  Rng rng(222);
  for (int round = 0; round < 20; ++round) {
    std::vector<bool> from(16), to(16);
    for (int i = 0; i < 16; ++i) {
      from[i] = rng.flip();
      to[i] = rng.flip();
    }
    const auto r = sim.run_transition(from, to);
    EXPECT_EQ(r.values, net.evaluate(to));
    EXPECT_LE(r.settle_time, static_cast<double>(net.depth()));
  }
}

TEST(EventSim, FullBnbNetlistRoutesByEvents) {
  // Drive the complete N=8 gate network from one permutation's stable
  // state to another by events only; the decoded outputs must self-route.
  const GateLevelBnb gates(3);
  const EventSimulator sim(gates.netlist(),
                           EventSimulator::uniform_delays(gates.netlist(), 1.0));
  Rng rng(223);
  const Permutation from = identity_perm(8);
  for (int round = 0; round < 10; ++round) {
    const Permutation to = random_perm(8, rng);
    const auto r = sim.run_transition(gates.input_vector(from), gates.input_vector(to));
    const auto decoded = gates.decode_outputs(r.values);
    EXPECT_TRUE(decoded.self_routed) << to.to_string();
    EXPECT_LE(r.settle_time, static_cast<double>(gates.depth()));
    EXPECT_GT(r.transitions, 0U);
  }
}

TEST(EventSim, DelayVectorSizeChecked) {
  GateNetlist net;
  net.add_input();
  EXPECT_THROW(EventSimulator(net, std::vector<double>{}), bnb::contract_violation);
}

}  // namespace
}  // namespace bnb::sim
