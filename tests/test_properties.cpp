// Parameterized property sweeps: every (network-size, permutation-family,
// seed) cell must self-route, and structural invariants must hold at every
// size.  TEST_P instances form the repository's property-test layer.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "baselines/batcher.hpp"
#include "baselines/benes.hpp"
#include "baselines/koppelman.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/bit_sorter.hpp"
#include "core/bnb_netlist.hpp"
#include "core/bnb_network.hpp"
#include "core/complexity.hpp"
#include "core/splitter.hpp"
#include "perm/classes.hpp"

namespace bnb {
namespace {

// ------------------------------------------------------------------------
// Sweep 1: routing correctness over (m, family, seed).

using RouteParam = std::tuple<unsigned, PermFamily, std::uint64_t>;

class RoutingSweep : public ::testing::TestWithParam<RouteParam> {};

TEST_P(RoutingSweep, BnbSelfRoutes) {
  const auto [m, family, seed] = GetParam();
  const BnbNetwork net(m);
  const Permutation pi = make_perm(family, net.inputs(), seed);
  const auto r = net.route(pi);
  EXPECT_TRUE(r.self_routed);
  for (std::size_t j = 0; j < net.inputs(); ++j) EXPECT_EQ(r.dest[j], pi(j));
}

TEST_P(RoutingSweep, BaselinesAgreeWithBnb) {
  const auto [m, family, seed] = GetParam();
  const Permutation pi = make_perm(family, std::size_t{1} << m, seed);
  std::vector<Word> words(pi.size());
  for (std::size_t j = 0; j < pi.size(); ++j) words[j] = Word{pi(j), seed ^ j};

  const auto bnb = BnbNetwork(m).route_words(words);
  const auto bat = BatcherNetwork(m).route_words(words);
  const auto kop = KoppelmanSrpn(m).route_words(words);
  EXPECT_EQ(bnb.outputs, bat.outputs);
  EXPECT_EQ(bnb.outputs, kop.outputs);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFamilies, RoutingSweep,
    ::testing::Combine(
        ::testing::Values(2U, 3U, 4U, 6U, 9U),
        ::testing::Values(PermFamily::kIdentity, PermFamily::kReversal,
                          PermFamily::kBitReversal, PermFamily::kPerfectShuffle,
                          PermFamily::kTranspose, PermFamily::kExchange,
                          PermFamily::kRandom, PermFamily::kRandomBpc,
                          PermFamily::kRandomDerangement),
        ::testing::Values(1ULL, 2ULL)),
    [](const ::testing::TestParamInfo<RouteParam>& info) {
      std::string name;
      name.append("m").append(std::to_string(std::get<0>(info.param)));
      name.append("_").append(perm_family_name(std::get<1>(info.param)));
      name.append("_s").append(std::to_string(std::get<2>(info.param)));
      for (auto& c : name) {
        if (c == '-' || c == '/') c = '_';
      }
      return name;
    });

// ------------------------------------------------------------------------
// Sweep 2: splitter balance invariant at every size.

class SplitterSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SplitterSweep, BalancesEveryEvenWeightInput) {
  const unsigned p = GetParam();
  const Splitter sp(p);
  const std::size_t n = sp.inputs();
  Rng rng(500 + p);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> in(n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.flip());
    if (std::accumulate(in.begin(), in.end(), 0) % 2 != 0) in[0] ^= 1;
    if (p == 1) {
      // Definition 3's p = 1 case: inputs {0,1} come out as (0 up, 1 down).
      in[0] = static_cast<std::uint8_t>(rng.flip());
      in[1] = static_cast<std::uint8_t>(1 - in[0]);
      const auto r1 = sp.route(in);
      EXPECT_EQ(r1.out_bits, (std::vector<std::uint8_t>{0, 1}));
      continue;
    }
    const auto r = sp.route(in);
    std::size_t even = 0;
    std::size_t odd = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (r.out_bits[j]) ((j % 2 == 0) ? even : odd)++;
    }
    EXPECT_EQ(even, odd);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, SplitterSweep,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U, 10U, 12U));

// ------------------------------------------------------------------------
// Sweep 3: analytics vs constructed structure at every m.

class StructureSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(StructureSweep, CensusAndDelayMatchClosedForms) {
  const unsigned m = GetParam();
  const std::uint64_t N = pow2(m);
  const BnbNetlist net(m, 4);
  const auto c = net.census();
  const auto predicted = model::bnb_cost_exact(N, 4);
  EXPECT_EQ(c.switches_2x2, predicted.sw);
  EXPECT_EQ(c.function_nodes, predicted.fn);

  const auto path = net.critical_path(1.0, 1.0);
  const auto d = model::bnb_delay(N);
  EXPECT_EQ(path.units.sw, d.sw);
  EXPECT_EQ(path.units.fn, d.fn);
}

TEST_P(StructureSweep, BatcherStructureMatchesEq10To12) {
  const unsigned m = GetParam();
  const std::uint64_t N = pow2(m);
  const BatcherNetwork net(m);
  EXPECT_EQ(net.comparator_count(), model::batcher_comparator_count(N));
  EXPECT_EQ(net.depth(), model::batcher_stage_count(N));
}

TEST_P(StructureSweep, BsnCensusMatchesEq4) {
  const unsigned m = GetParam();
  const BitSorter bsn(m);
  EXPECT_EQ(bsn.census().function_nodes, model::nested_arbiter_cost(pow2(m)));
}

INSTANTIATE_TEST_SUITE_P(AllM, StructureSweep,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U, 9U, 10U));

// ------------------------------------------------------------------------
// Sweep 4: Benes routes every family at several sizes (global baseline).

class BenesSweep : public ::testing::TestWithParam<std::tuple<unsigned, PermFamily>> {};

TEST_P(BenesSweep, Routes) {
  const auto [m, family] = GetParam();
  const BenesNetwork net(m);
  EXPECT_TRUE(net.route(make_perm(family, net.inputs(), 11)).self_routed);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BenesSweep,
    ::testing::Combine(::testing::Values(2U, 4U, 7U),
                       ::testing::Values(PermFamily::kIdentity, PermFamily::kReversal,
                                         PermFamily::kBitReversal,
                                         PermFamily::kTranspose, PermFamily::kRandom)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, PermFamily>>& info) {
      std::string name;
      name.append("m").append(std::to_string(std::get<0>(info.param)));
      name.append("_").append(perm_family_name(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-' || c == '/') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bnb
