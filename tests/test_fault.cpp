// Fault subsystem: the FaultModel address space, the injection compiler
// (behavioral and compiled overlays MUST behave identically), the
// DeliveryAudit taxonomy, and the RobustRouter's no-silent-misroute
// contract — exhaustively for every single fault at m <= 3, and with
// randomized multi-fault campaigns at m = 8 and m = 10.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "core/compiled_bnb.hpp"
#include "fabric/pipeline.hpp"
#include "fault/delivery_audit.hpp"
#include "fault/fault_model.hpp"
#include "fault/injection.hpp"
#include "fault/robust_router.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

/// True iff the routed result actually delivered pi: every input's word is
/// on the line pi names, with its address intact.
bool delivery_matches(const Permutation& pi, std::span<const Word> outputs) {
  for (std::size_t line = 0; line < outputs.size(); ++line) {
    const Word& w = outputs[line];
    if (w.payload >= outputs.size()) return false;
    if (pi(static_cast<std::size_t>(w.payload)) != line) return false;
    if (w.address != line) return false;
  }
  return true;
}

// ---- FaultModel -------------------------------------------------------

TEST(FaultModel, ValidatesSpecs) {
  FaultModel model(3);
  // Good specs of every kind.
  model.add({FaultKind::kStuckControl, {0, 0, 0, 3}, true, 0, 0});
  model.add({FaultKind::kStuckFlag, {0, 1, 1, 1}, false, 0, 0});
  model.add({FaultKind::kDeadCrosspoint, {1, 0, 1, 1}, false, 1, 0});
  model.add({FaultKind::kLinkFlip, {2, 0, 3, 1}, false, 0, 0});
  EXPECT_EQ(model.size(), 4U);

  // Out-of-shape coordinates must throw, not silently inject elsewhere.
  EXPECT_THROW(model.add({FaultKind::kStuckControl, {3, 0, 0, 0}}),
               contract_violation);  // main stage >= m
  EXPECT_THROW(model.add({FaultKind::kStuckControl, {0, 3, 0, 0}}),
               contract_violation);  // nested column >= m - i
  EXPECT_THROW(model.add({FaultKind::kStuckControl, {0, 0, 1, 0}}),
               contract_violation);  // splitter >= 2^{i+j}
  EXPECT_THROW(model.add({FaultKind::kStuckControl, {0, 0, 0, 4}}),
               contract_violation);  // switch >= 2^{p-1}
  EXPECT_THROW(model.add({FaultKind::kStuckFlag, {0, 2, 0, 0}}),
               contract_violation);  // sp(1) has no arbiter flags
  EXPECT_THROW(model.add({FaultKind::kLinkFlip, {0, 0, 0, 8}}),
               contract_violation);  // line >= 2^p
  EXPECT_THROW(model.add({FaultKind::kDeadCrosspoint, {0, 0, 0, 0}, false, 2, 0}),
               contract_violation);  // port > 1
  EXPECT_EQ(model.size(), 4U);       // rejected specs were not added
}

TEST(FaultModel, SingleFaultEnumerationIsExhaustive) {
  // m = 2 by hand: column (0,0) is one sp(2) (2 switches, 4 lines) ->
  // 2*(2 stuck-ctl + 2 stuck-flag + 4 dead) + 4 flips = 20; columns (0,1)
  // and (1,0) are two sp(1) each (1 switch, 2 lines, no flags) ->
  // 2*((2+4) + 2) = 16 apiece.  52 total.
  const auto faults = FaultModel::all_single_faults(2);
  EXPECT_EQ(faults.size(), 52U);
  // Every one must validate.
  FaultModel model(2);
  for (const auto& f : faults) model.add(f);
  EXPECT_EQ(model.size(), faults.size());
  // And the enumeration must not repeat itself.
  std::set<std::string> seen;
  for (const auto& f : faults) seen.insert(to_string(f));
  EXPECT_EQ(seen.size(), faults.size());
}

TEST(FaultModel, RandomCampaignIsValidAndDeterministic) {
  for (const unsigned m : {2U, 5U, 10U}) {
    Rng rng_a(0xCA3A11 + m);
    Rng rng_b(0xCA3A11 + m);
    const auto a = FaultModel::random_campaign(m, 25, rng_a);
    const auto b = FaultModel::random_campaign(m, 25, rng_b);
    ASSERT_EQ(a.size(), 25U);
    EXPECT_TRUE(a == b) << "campaign must replay from the seed, m=" << m;
    FaultModel model(m);
    for (const auto& f : a) model.add(f);  // all specs in-shape
  }
}

// ---- Injection compiler: behavioral == compiled -----------------------

TEST(FaultInjection, BehavioralMatchesCompiledOnEverySingleFault) {
  // The same FaultModel compiled to both overlays must produce the SAME
  // damaged delivery from both engines — word for word.
  for (const unsigned m : {2U, 3U}) {
    const BnbNetwork behavioral(m);
    const CompiledBnb engine(m);
    RouteScratch scratch;
    Rng rng(0xD1FF + m);
    const std::size_t n = std::size_t{1} << m;
    for (const FaultSpec& spec : FaultModel::all_single_faults(m)) {
      FaultModel model(m);
      model.add(spec);
      const NetworkFaults net_overlay = compile_network_faults(model);
      const EngineFaults eng_overlay = compile_engine_faults(model);
      for (int round = 0; round < 8; ++round) {
        const Permutation pi = random_perm(n, rng);
        const auto ref = behavioral.route_with_faults(pi, net_overlay);
        const auto got = engine.route(pi, scratch, nullptr, &eng_overlay);
        ASSERT_EQ(ref.self_routed, got.self_routed)
            << to_string(spec) << " " << pi.to_string();
        for (std::size_t line = 0; line < n; ++line) {
          ASSERT_EQ(ref.outputs[line], got.outputs[line])
              << "line " << line << " under " << to_string(spec) << " "
              << pi.to_string();
        }
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(ref.dest[j], got.dest[j]) << to_string(spec);
        }
      }
    }
  }
}

TEST(FaultInjection, EmptyOverlayRoutesClean) {
  const unsigned m = 5;
  const BnbNetwork behavioral(m);
  const CompiledBnb engine(m);
  RouteScratch scratch;
  const EngineFaults empty_engine;
  const NetworkFaults empty_net;
  Rng rng(0xC1EA);
  for (int round = 0; round < 20; ++round) {
    const Permutation pi = random_perm(std::size_t{1} << m, rng);
    EXPECT_TRUE(engine.route(pi, scratch, nullptr, &empty_engine).self_routed);
    EXPECT_TRUE(behavioral.route_with_faults(pi, empty_net).self_routed);
  }
}

// ---- Exhaustive single-fault campaign (m <= 3) ------------------------

TEST(FaultCampaign, EverySingleFaultRoutesOrIsCaughtM2Exhaustive) {
  // All 52 faults x all 24 permutations of N = 4: either the damaged
  // fabric still delivered correctly (the fault was not excited), or the
  // DeliveryAudit catches it.  Never a clean audit over a wrong delivery.
  const unsigned m = 2;
  const CompiledBnb engine(m);
  const DeliveryAudit audit(m);
  RouteScratch scratch;
  for (const FaultSpec& spec : FaultModel::all_single_faults(m)) {
    FaultModel model(m);
    model.add(spec);
    const EngineFaults overlay = compile_engine_faults(model);
    Permutation pi(4);
    do {
      const auto out = engine.route(pi, scratch, nullptr, &overlay);
      const AuditReport report = audit.audit(pi, out.outputs);
      const bool correct = delivery_matches(pi, out.outputs);
      ASSERT_EQ(report.ok, correct)
          << to_string(spec) << " " << pi.to_string()
          << ": audit and ground truth disagree";
    } while (pi.next_lexicographic());
  }
}

TEST(FaultCampaign, EverySingleFaultRoutesOrIsCaughtM3Random) {
  const unsigned m = 3;
  const CompiledBnb engine(m);
  const DeliveryAudit audit(m);
  RouteScratch scratch;
  Rng rng(0xFA0173);
  std::uint64_t excited = 0;
  const auto faults = FaultModel::all_single_faults(m);
  for (const FaultSpec& spec : faults) {
    FaultModel model(m);
    model.add(spec);
    const EngineFaults overlay = compile_engine_faults(model);
    for (int round = 0; round < 200; ++round) {
      const Permutation pi = random_perm(8, rng);
      const auto out = engine.route(pi, scratch, nullptr, &overlay);
      const AuditReport report = audit.audit(pi, out.outputs);
      ASSERT_EQ(report.ok, delivery_matches(pi, out.outputs))
          << to_string(spec) << " " << pi.to_string();
      if (!report.ok) ++excited;
    }
  }
  // The campaign is meaningless if nothing ever fires.
  EXPECT_GT(excited, faults.size());
}

// ---- DeliveryAudit taxonomy -------------------------------------------

TEST(DeliveryAudit, ClassifiesEachFailureKind) {
  const unsigned m = 3;
  const DeliveryAudit audit(m);
  const std::size_t n = 8;
  Rng rng(0xA0D17);
  const Permutation pi = random_perm(n, rng);

  // A clean delivery: line pi(j) holds {address pi(j), payload j}.
  std::vector<Word> clean(n);
  for (std::size_t j = 0; j < n; ++j) {
    clean[pi(j)] = Word{pi(j), std::uint64_t{j}};
  }
  {
    const AuditReport report = audit.audit(pi, clean);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.errors, 0U);
    EXPECT_EQ(report.first_kind(), RouteErrorKind::kNone);
    EXPECT_EQ(DeliveryAudit::slice_checksum(clean), audit.expected_checksum());
  }
  {
    // Two words swapped whole: both lines are wrong destinations, the
    // checksum (order-independent) stays clean.
    auto bad = clean;
    std::swap(bad[0], bad[1]);
    const AuditReport report = audit.audit(pi, bad);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.errors, 2U);
    EXPECT_EQ(report.first_kind(), RouteErrorKind::kWrongDestination);
  }
  {
    // Address damaged in transit (what a dead crosspoint does).
    auto bad = clean;
    bad[3].address ^= static_cast<std::uint32_t>(n - 1);
    const AuditReport report = audit.audit(pi, bad);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.first_kind(), RouteErrorKind::kCorruptedAddress);
    // The aggregate checksum must notice the altered slice too.
    EXPECT_NE(DeliveryAudit::slice_checksum(bad), audit.expected_checksum());
    bool has_checksum_finding = false;
    for (const auto& f : report.findings) {
      has_checksum_finding |= f.kind == RouteErrorKind::kChecksumMismatch;
    }
    EXPECT_TRUE(has_checksum_finding);
  }
  {
    // One word duplicated over another: provenance scoreboard trips.
    auto bad = clean;
    bad[5] = bad[4];
    const AuditReport report = audit.audit(pi, bad);
    EXPECT_FALSE(report.ok);
    bool has_bijection_finding = false;
    for (const auto& f : report.findings) {
      has_bijection_finding |= f.kind == RouteErrorKind::kBrokenBijection;
    }
    EXPECT_TRUE(has_bijection_finding);
  }
  {
    // Garbage payload.
    auto bad = clean;
    bad[2].payload = n + 17;
    const AuditReport report = audit.audit(pi, bad);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.first_kind(), RouteErrorKind::kPayloadMismatch);
  }
  {
    // A totally scrambled slice must not overflow the findings cap.
    std::vector<Word> bad(n, Word{0, 0});
    const AuditReport report = audit.audit(pi, bad);
    EXPECT_FALSE(report.ok);
    EXPECT_LE(report.findings.size(), DeliveryAudit::kMaxFindings);
    EXPECT_GE(report.errors, report.findings.size());
  }
}

// ---- RobustRouter -----------------------------------------------------

TEST(RobustRouter, CleanFabricDeliversFirstTry) {
  RobustRouter router(5);
  Rng rng(0xC1EA2);
  for (int round = 0; round < 10; ++round) {
    const Permutation pi = random_perm(32, rng);
    const RobustReport report = router.route(pi);
    EXPECT_EQ(report.outcome, RouteOutcome::kDelivered);
    EXPECT_EQ(report.attempts, 1U);
    ASSERT_EQ(report.dest.size(), 32U);
    for (std::size_t j = 0; j < 32; ++j) EXPECT_EQ(report.dest[j], pi(j));
  }
  EXPECT_EQ(router.stats().routed, 10U);
  EXPECT_EQ(router.stats().misroutes_caught, 0U);
}

TEST(RobustRouter, TransientFaultHealsByRetry) {
  // A one-attempt glitch window: the first attempt may misroute, the retry
  // runs on healed hardware — the ladder must end delivered either way.
  const unsigned m = 5;
  Rng rng(0x7E4A);
  std::uint64_t healed = 0;
  for (int round = 0; round < 40; ++round) {
    RobustPolicy policy;
    policy.max_retries = 1;
    RobustRouter router(m, policy);
    Rng campaign_rng(0x7E4A00 + round);
    FaultModel model(m);
    for (const auto& f : FaultModel::random_campaign(m, 2, campaign_rng)) {
      model.add(f);
    }
    router.inject_transient(model, 1);
    const Permutation pi = random_perm(32, rng);
    const RobustReport report = router.route(pi);
    ASSERT_TRUE(report.delivered()) << "round " << round;
    ASSERT_EQ(report.dest.size(), 32U);
    for (std::size_t j = 0; j < 32; ++j) ASSERT_EQ(report.dest[j], pi(j));
    if (report.outcome == RouteOutcome::kDeliveredAfterRetry) ++healed;
  }
  // With 40 random 2-fault glitches, some must actually have fired.
  EXPECT_GT(healed, 0U);
}

TEST(RobustRouter, PersistentFaultFallsBackToSparePlane) {
  const unsigned m = 6;
  RobustRouter router(m);
  FaultModel model(m);
  // A link flip into the first splitter's slice: fires on essentially
  // every permutation.
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
  router.inject(model);
  Rng rng(0xFA11BAC);
  std::uint64_t fallbacks = 0;
  for (int round = 0; round < 20; ++round) {
    const Permutation pi = random_perm(64, rng);
    const RobustReport report = router.route(pi);
    ASSERT_TRUE(report.delivered());
    for (std::size_t j = 0; j < 64; ++j) ASSERT_EQ(report.dest[j], pi(j));
    if (report.outcome == RouteOutcome::kDeliveredByFallback) {
      ++fallbacks;
      EXPECT_TRUE(report.diagnosis.located);
    }
  }
  EXPECT_GT(fallbacks, 0U);
  EXPECT_EQ(router.stats().fallback_routes, fallbacks);
  // Clearing the faults restores the primary path.
  router.clear_faults();
  const Permutation pi = random_perm(64, rng);
  EXPECT_EQ(router.route(pi).outcome, RouteOutcome::kDelivered);
}

TEST(RobustRouter, DiagnosisLocatesStuckControls) {
  // For persistent stuck-control faults the binary search must name the
  // exact paper coordinates of the broken switch's column and splitter.
  const unsigned m = 6;
  Rng rng(0xD1A6);
  int diagnosed = 0;
  for (const FaultSpec base : {
           FaultSpec{FaultKind::kStuckControl, {0, 0, 0, 5}, false, 0, 0},
           FaultSpec{FaultKind::kStuckControl, {0, 2, 1, 3}, false, 0, 0},
           FaultSpec{FaultKind::kStuckControl, {2, 1, 5, 1}, false, 0, 0},
           FaultSpec{FaultKind::kStuckControl, {4, 0, 13, 1}, false, 0, 0},
           FaultSpec{FaultKind::kStuckControl, {5, 0, 17, 0}, false, 0, 0},
       }) {
    for (const bool value : {false, true}) {
      FaultSpec spec = base;
      spec.value = value;
      RobustPolicy policy;
      policy.max_retries = 0;
      policy.fallback_to_behavioral = false;  // force kFailed for diagnosis
      RobustRouter router(m, policy);
      FaultModel model(m);
      model.add(spec);
      router.inject(model);
      for (int round = 0; round < 10; ++round) {
        const Permutation pi = random_perm(64, rng);
        const RobustReport report = router.route(pi);
        if (report.delivered()) {
          // Stuck at the naturally computed value: benign for this perm.
          for (std::size_t j = 0; j < 64; ++j) ASSERT_EQ(report.dest[j], pi(j));
          continue;
        }
        ASSERT_TRUE(report.diagnosis.located) << to_string(spec);
        EXPECT_EQ(report.diagnosis.main_stage, spec.at.main_stage)
            << to_string(spec);
        EXPECT_EQ(report.diagnosis.nested_stage, spec.at.nested_column)
            << to_string(spec);
        EXPECT_EQ(report.diagnosis.splitter, spec.at.splitter) << to_string(spec);
        ++diagnosed;
      }
    }
  }
  EXPECT_GT(diagnosed, 0);
}

TEST(RobustRouter, MultiFaultCampaignNeverSilentlyMisroutes) {
  // Randomized multi-fault campaigns at m = 8 and m = 10: whatever the
  // damage, every route ends delivered (with a verified mapping) or
  // kFailed with the faulty component diagnosed.  Silent misroutes —
  // delivered() with a wrong mapping — are the one forbidden outcome.
  for (const unsigned m : {8U, 10U}) {
    const std::size_t n = std::size_t{1} << m;
    Rng rng(0xCA4BA16 + m);
    for (int campaign = 0; campaign < 6; ++campaign) {
      const bool with_fallback = campaign % 2 == 0;
      RobustPolicy policy;
      policy.max_retries = 1;
      policy.fallback_to_behavioral = with_fallback;
      RobustRouter router(m, policy);
      FaultModel model(m);
      Rng campaign_rng(0xF00D + 97 * campaign + m);
      const std::size_t count = 1 + campaign_rng.below(3);
      for (const auto& f : FaultModel::random_campaign(m, count, campaign_rng)) {
        model.add(f);
      }
      router.inject(model);
      for (int round = 0; round < 6; ++round) {
        const Permutation pi = random_perm(n, rng);
        const RobustReport report = router.route(pi);
        if (report.delivered()) {
          ASSERT_EQ(report.dest.size(), n);
          for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(report.dest[j], pi(j))
                << "SILENT MISROUTE m=" << m << " campaign " << campaign;
          }
        } else {
          ASSERT_FALSE(with_fallback)
              << "clean spare plane can never fail, m=" << m;
          ASSERT_TRUE(report.diagnosis.located)
              << "kFailed must name a component, m=" << m;
          EXPECT_LT(report.diagnosis.column, router.engine().columns().size());
        }
      }
    }
  }
}

TEST(RobustRouter, SingleStuckFaultsAtM10AreNeverSilent) {
  // The ISSUE's acceptance criterion, verbatim: any single stuck-at fault
  // at m <= 10 must never produce a silent misroute.
  const unsigned m = 10;
  const std::size_t n = std::size_t{1} << m;
  Rng rng(0x57C4);
  Rng fault_rng(0x57C5);
  for (int trial = 0; trial < 24; ++trial) {
    RobustPolicy policy;
    policy.max_retries = 0;
    policy.fallback_to_behavioral = trial % 2 == 0;
    RobustRouter router(m, policy);
    FaultModel model(m);
    // Constrain the random campaign to stuck-at faults only.
    for (;;) {
      const auto sample = FaultModel::random_campaign(m, 1, fault_rng);
      if (sample[0].kind == FaultKind::kStuckControl ||
          sample[0].kind == FaultKind::kStuckFlag) {
        model.add(sample[0]);
        break;
      }
    }
    router.inject(model);
    for (int round = 0; round < 4; ++round) {
      const Permutation pi = random_perm(n, rng);
      const RobustReport report = router.route(pi);
      if (report.delivered()) {
        for (std::size_t j = 0; j < n; ++j) ASSERT_EQ(report.dest[j], pi(j));
      } else {
        ASSERT_TRUE(report.diagnosis.located);
      }
    }
  }
}

// ---- Batch + staged/pipelined integration -----------------------------

TEST(FaultInjection, BatchRoutingSeesTheOverlay) {
  const unsigned m = 5;
  const CompiledBnb engine(m);
  Rng rng(0xBA7C4);
  std::vector<Permutation> perms;
  for (int i = 0; i < 12; ++i) perms.push_back(random_perm(32, rng));

  const auto clean = engine.route_batch(perms, 2);
  EXPECT_TRUE(clean.all_self_routed);

  FaultModel model(m);
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
  const EngineFaults overlay = compile_engine_faults(model);
  const auto faulty = engine.route_batch(perms, 2, &overlay);
  EXPECT_FALSE(faulty.all_self_routed);
}

TEST(PipelinedFabric, TransientInjectionWindowSelfHeals) {
  // Damage the streaming fabric for the first cycles only; with retries,
  // the stream must end all_delivered with the damage visible in the
  // fault-aware counters.
  const unsigned m = 4;
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, m);
  Rng rng(0x51EA3);
  std::vector<Permutation> perms;
  for (int i = 0; i < 24; ++i) perms.push_back(random_perm(16, rng));

  const auto clean = fabric.run_stream(perms);
  EXPECT_TRUE(clean.all_delivered);
  EXPECT_EQ(clean.misroutes_caught, 0U);
  EXPECT_EQ(clean.degraded_cycles, 0U);
  EXPECT_EQ(clean.words_delivered, perms.size() * 16U);

  FaultModel model(m);
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
  PipelinedFabric::InjectionWindow window;
  window.faults = compile_engine_faults(model);
  window.until_cycle = 8;
  const auto healed = fabric.run_stream(perms, &window, /*max_retries=*/4);
  EXPECT_EQ(healed.degraded_cycles, 8U);
  EXPECT_GT(healed.misroutes_caught, 0U);
  EXPECT_EQ(healed.retries, healed.misroutes_caught);
  EXPECT_EQ(healed.failed_permutations, 0U);
  EXPECT_TRUE(healed.all_delivered);
  EXPECT_EQ(healed.words_delivered, perms.size() * 16U);
  EXPECT_GT(healed.cycles, clean.cycles);  // reissues lengthen the stream
}

TEST(PipelinedFabric, PermanentFaultWithoutRetriesIsCountedNotHidden) {
  const unsigned m = 4;
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, m);
  Rng rng(0x51EA4);
  std::vector<Permutation> perms;
  for (int i = 0; i < 10; ++i) perms.push_back(random_perm(16, rng));

  FaultModel model(m);
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 1}, false, 0, 0});
  PipelinedFabric::InjectionWindow window;
  window.faults = compile_engine_faults(model);  // never expires
  const auto stats = fabric.run_stream(perms, &window, /*max_retries=*/0);
  EXPECT_EQ(stats.degraded_cycles, stats.cycles);
  EXPECT_GT(stats.misroutes_caught, 0U);
  EXPECT_EQ(stats.retries, 0U);
  EXPECT_EQ(stats.failed_permutations, stats.misroutes_caught);
  EXPECT_FALSE(stats.all_delivered);
}

}  // namespace
}  // namespace bnb
