#include "core/gbn.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace bnb {
namespace {

TEST(Gbn, StageAndBoxCounts) {
  // Definition 2: stage-i has 2^i boxes SB(m-i).
  const GbnTopology g(3);
  EXPECT_EQ(g.inputs(), 8U);
  EXPECT_EQ(g.stages(), 3U);
  EXPECT_EQ(g.boxes_in_stage(0), 1U);
  EXPECT_EQ(g.boxes_in_stage(1), 2U);
  EXPECT_EQ(g.boxes_in_stage(2), 4U);
  EXPECT_EQ(g.box_size(0), 8U);
  EXPECT_EQ(g.box_size(1), 4U);
  EXPECT_EQ(g.box_size(2), 2U);
}

TEST(Gbn, BoxOfLine) {
  const GbnTopology g(3);
  EXPECT_EQ(g.box_of(1, 5).box, 1U);
  EXPECT_EQ(g.box_of(1, 5).offset, 1U);
  EXPECT_EQ(g.box_of(2, 5).box, 2U);
  EXPECT_EQ(g.box_of(2, 5).offset, 1U);
  EXPECT_EQ(g.box_of(0, 5).box, 0U);
  EXPECT_EQ(g.box_of(0, 5).offset, 5U);
}

TEST(Gbn, BoxBaseRoundTrips) {
  const GbnTopology g(5);
  for (unsigned stage = 0; stage < g.stages(); ++stage) {
    for (std::size_t line = 0; line < g.inputs(); ++line) {
      const auto ref = g.box_of(stage, line);
      EXPECT_EQ(g.box_base(stage, ref.box) + ref.offset, line);
    }
  }
}

TEST(Gbn, ConnectionsStayInBlock) {
  // The recursive-construction invariant: a stage's connection never leaves
  // the block owned by the box it exits.
  for (unsigned m = 2; m <= 8; ++m) {
    const GbnTopology g(m);
    for (unsigned stage = 0; stage + 1 < m; ++stage) {
      EXPECT_TRUE(g.connection_stays_in_block(stage)) << "m=" << m << " stage=" << stage;
    }
  }
}

TEST(Gbn, EvenOutputsFeedUpperChildBox) {
  // Even box outputs go to box 2b of the next stage, odd outputs to 2b+1.
  for (unsigned m = 2; m <= 6; ++m) {
    const GbnTopology g(m);
    for (unsigned stage = 0; stage + 1 < m; ++stage) {
      for (std::size_t line = 0; line < g.inputs(); ++line) {
        const auto from = g.box_of(stage, line);
        const auto to = g.box_of(stage + 1, g.next_line(stage, line));
        if (from.offset % 2 == 0) {
          EXPECT_EQ(to.box, 2 * from.box);
          EXPECT_EQ(to.offset, from.offset / 2);
        } else {
          EXPECT_EQ(to.box, 2 * from.box + 1);
          EXPECT_EQ(to.offset, from.offset / 2);
        }
      }
    }
  }
}

TEST(Gbn, ConnectionIsUnshufflePermutation) {
  const GbnTopology g(4);
  for (unsigned stage = 0; stage + 1 < g.stages(); ++stage) {
    const Permutation conn = g.connection(stage);
    for (std::size_t line = 0; line < g.inputs(); ++line) {
      EXPECT_EQ(conn(line), g.next_line(stage, line));
    }
  }
}

TEST(Gbn, DescribeMentionsEveryStage) {
  const GbnTopology g(3);
  const std::string s = g.describe();
  EXPECT_NE(s.find("stage-0"), std::string::npos);
  EXPECT_NE(s.find("stage-1"), std::string::npos);
  EXPECT_NE(s.find("stage-2"), std::string::npos);
  EXPECT_NE(s.find("SB(3)"), std::string::npos);
}

TEST(Gbn, PreconditionsEnforced) {
  EXPECT_THROW(GbnTopology(0), contract_violation);
  const GbnTopology g(3);
  EXPECT_THROW((void)g.boxes_in_stage(3), contract_violation);
  EXPECT_THROW((void)g.next_line(2, 0), contract_violation);  // last stage has no connection
  EXPECT_THROW((void)g.box_of(0, 8), contract_violation);
}

}  // namespace
}  // namespace bnb
