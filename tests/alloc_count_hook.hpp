// Test-only global allocation counter.
//
// Linking alloc_count_hook.cpp into a test binary replaces the global
// operator new/delete with counting versions, so a test can assert that a
// code region performs zero heap allocations (the steady-state guarantee
// of the compiled routing engine).  The counter covers every thread of the
// process; take samples around single-threaded regions only.
#pragma once

#include <cstddef>

namespace bnb::testhook {

/// Number of operator new / new[] calls since process start (or last reset).
[[nodiscard]] std::size_t allocation_count() noexcept;

/// Reset the counter to zero.
void reset_allocation_count() noexcept;

}  // namespace bnb::testhook
