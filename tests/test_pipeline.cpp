// Staged routers and pipelined fabric operation.
#include "fabric/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "core/complexity.hpp"
#include "fabric/staged_router.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(StagedBnb, ColumnCountIsEq7) {
  for (unsigned m = 1; m <= 10; ++m) {
    const StagedBnbRouter r(m);
    EXPECT_EQ(r.total_columns(), model::bnb_delay_sw_units(pow2(m))) << "m=" << m;
  }
}

TEST(StagedBnb, RunToCompletionMatchesBehavioral) {
  Rng rng(151);
  for (const unsigned m : {2U, 4U, 7U}) {
    const StagedBnbRouter staged(m);
    const BnbNetwork net(m);
    const std::size_t n = std::size_t{1} << m;
    const Permutation pi = random_perm(n, rng);
    std::vector<Word> words(n);
    for (std::size_t j = 0; j < n; ++j) words[j] = Word{pi(j), j};
    EXPECT_EQ(staged.run_to_completion(words), net.route_words(words).outputs);
  }
}

TEST(StagedBnb, ColumnDelaysSumToEq9) {
  for (const unsigned m : {2U, 5U, 8U}) {
    const StagedBnbRouter r(m);
    sim::DelayUnits total{};
    for (unsigned c = 0; c < r.total_columns(); ++c) total += r.column_delay(c);
    const auto d = model::bnb_delay(pow2(m));
    EXPECT_EQ(total.sw, d.sw);
    EXPECT_EQ(total.fn, d.fn);
  }
}

TEST(StagedBnb, WorstColumnIsTheFirstSplitter) {
  const StagedBnbRouter r(7);
  const auto worst = r.max_column_delay();
  EXPECT_EQ(worst.fn, 2ULL * 7);  // A(7): 2p levels
  EXPECT_EQ(worst.sw, 1ULL);
}

TEST(StagedBatcher, ColumnsAndDelays) {
  const StagedBatcherRouter r(6);
  EXPECT_EQ(r.total_columns(), model::batcher_stage_count(64));
  EXPECT_EQ(r.max_column_delay().fn, 6ULL);  // log N-bit comparison
  EXPECT_EQ(r.max_column_delay().sw, 1ULL);
}

TEST(StagedBatcher, StepsSortCorrectly) {
  Rng rng(152);
  const StagedBatcherRouter r(5);
  const Permutation pi = random_perm(32, rng);
  std::vector<Word> words(32);
  for (std::size_t j = 0; j < 32; ++j) words[j] = Word{pi(j), j};
  auto job = r.start(words);
  while (!r.finished(job)) r.step(job);
  for (std::size_t line = 0; line < 32; ++line) {
    EXPECT_EQ(job.lines[line].address, line);
  }
}

TEST(Pipeline, StreamsDeliverEverythingBnb) {
  Rng rng(153);
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, 4);
  std::vector<Permutation> stream;
  for (int i = 0; i < 50; ++i) stream.push_back(random_perm(16, rng));
  const auto stats = fabric.run_stream(stream);
  EXPECT_TRUE(stats.all_delivered);
  EXPECT_EQ(stats.permutations, 50U);
  EXPECT_EQ(stats.words_delivered, 50U * 16);
  // Drain time: issue 50, pipeline depth 10 -> about 60 cycles.
  EXPECT_EQ(stats.latency_columns, 10U);
  EXPECT_GE(stats.cycles, 50U);
  EXPECT_LE(stats.cycles, 50U + stats.latency_columns + 1);
}

TEST(Pipeline, StreamsDeliverEverythingBatcher) {
  Rng rng(154);
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBatcher, 4);
  std::vector<Permutation> stream;
  for (int i = 0; i < 20; ++i) stream.push_back(random_perm(16, rng));
  const auto stats = fabric.run_stream(stream);
  EXPECT_TRUE(stats.all_delivered);
  EXPECT_EQ(stats.words_delivered, 20U * 16);
}

TEST(Pipeline, BnbCycleTimeBeatsBatcherForLargeM) {
  // Per-column: BNB's worst column is its biggest arbiter (2m D_FN + D_SW);
  // Batcher's columns are uniform (m D_FN + D_SW).  Column-registered, BNB
  // is actually SLOWER per cycle — the win claimed by the paper is
  // end-to-end combinational delay, not column-pipelined cycle time.  Both
  // facts should hold in our models.
  const unsigned m = 8;
  const PipelinedFabric bnb_fab(PipelinedFabric::Kind::kBnb, m);
  const PipelinedFabric bat_fab(PipelinedFabric::Kind::kBatcher, m);
  EXPECT_GT(bnb_fab.cycle_time().evaluate(1.0, 1.0),
            bat_fab.cycle_time().evaluate(1.0, 1.0));
  // End-to-end (Eq. 9 vs Eq. 12): BNB wins for m = 8.
  EXPECT_LT(model::bnb_delay(256).evaluate(),
            model::batcher_delay(256).evaluate());
}

TEST(Pipeline, EmptyStream) {
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, 3);
  const auto stats = fabric.run_stream({});
  EXPECT_EQ(stats.cycles, 0U);
  EXPECT_TRUE(stats.all_delivered);
}

TEST(Pipeline, SinglePermutationLatency) {
  Rng rng(155);
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, 5);
  std::vector<Permutation> one{random_perm(32, rng)};
  const auto stats = fabric.run_stream(one);
  EXPECT_TRUE(stats.all_delivered);
  // One job: cycles = depth + 1 (issue cycle + depth steps).
  EXPECT_EQ(stats.cycles, stats.latency_columns + 1);
}

}  // namespace
}  // namespace bnb
