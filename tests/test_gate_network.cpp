// Full gate-level BNB network: boolean-gate routing equals the behavioral
// router, and the netlist's shape matches the element accounting.
#include "core/gate_network.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "core/complexity.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(GateLevelBnb, ExhaustiveN4) {
  const GateLevelBnb gates(2);
  Permutation pi(4);
  do {
    const auto r = gates.route(pi);
    ASSERT_TRUE(r.self_routed) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(GateLevelBnb, ExhaustiveN8MatchesBehavioralOutputs) {
  const GateLevelBnb gates(3);
  const BnbNetwork net(3);
  Permutation pi(8);
  do {
    const auto g = gates.route(pi);
    const auto b = net.route(pi);
    ASSERT_TRUE(g.self_routed) << pi.to_string();
    for (std::size_t line = 0; line < 8; ++line) {
      ASSERT_EQ(g.output_addresses[line], b.outputs[line].address);
    }
  } while (pi.next_lexicographic());
}

TEST(GateLevelBnb, RandomN64AndFamilies) {
  const GateLevelBnb gates(6);
  Rng rng(161);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(gates.route(random_perm(64, rng)).self_routed);
  }
  for (const auto f : all_perm_families()) {
    EXPECT_TRUE(gates.route(make_perm(f, 64, 4)).self_routed)
        << perm_family_name(f);
  }
}

TEST(GateLevelBnb, GateCountDecomposes) {
  // Logic gates = 4 per function node (Fig. 5) + 1 XOR per switch (the
  // setting) + 2 MUX per switch per address slice, except sp(1) switches
  // whose flag input is a shared constant (the XOR still exists).
  for (const unsigned m : {2U, 3U, 4U, 5U}) {
    const GateLevelBnb gates(m);
    const std::uint64_t N = pow2(m);
    const auto cost = model::bnb_cost_exact(N, 0);
    std::uint64_t control_switches = 0;
    for (unsigned i = 0; i < m; ++i) control_switches += (N / 2) * (m - i);
    const std::uint64_t expected =
        4 * cost.fn + control_switches * (1 + 2ULL * m);
    EXPECT_EQ(gates.logic_gate_count(), expected) << "m=" << m;
  }
}

TEST(GateLevelBnb, DepthTracksEq9Scale) {
  // Each D_FN element is 2 gate levels, each switch 1 MUX level, plus the
  // per-switch setting XOR.  The netlist depth must stay within the
  // element-model bounds: between (sw + fn) and (sw*2 + fn*2).
  for (const unsigned m : {2U, 4U, 6U}) {
    const GateLevelBnb gates(m);
    const auto d = model::bnb_delay(pow2(m));
    const std::size_t depth = gates.depth();
    EXPECT_GE(depth, d.sw + d.fn) << "m=" << m;
    EXPECT_LE(depth, 2 * (d.sw + d.fn) + 1) << "m=" << m;
  }
}

TEST(GateLevelBnb, InputSizeChecked) {
  const GateLevelBnb gates(3);
  EXPECT_THROW((void)gates.route(Permutation(4)), contract_violation);
}

}  // namespace
}  // namespace bnb
