// Differential fuzzing: all BNB models and all baselines must agree on the
// exact output placement for the same word stream, across many random
// sizes and seeds.  Any divergence between the behavioral router, the
// element simulator, the bit-sliced machine, the gate netlist and the
// comparison networks is a bug in one of them.
#include <gtest/gtest.h>

#include "baselines/batcher.hpp"
#include "baselines/benes.hpp"
#include "baselines/bitonic.hpp"
#include "baselines/cellular.hpp"
#include "baselines/crossbar.hpp"
#include "baselines/koppelman.hpp"
#include "common/rng.hpp"
#include "core/bit_sliced.hpp"
#include "core/bnb_netlist.hpp"
#include "core/bnb_network.hpp"
#include "core/element_sim.hpp"
#include "core/gate_network.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Differential, AllBnbModelsAgreeOnDest) {
  Rng rng(0xD1FF);
  for (int round = 0; round < 60; ++round) {
    const unsigned m = 1 + static_cast<unsigned>(rng.below(6));  // N = 2..64
    const std::size_t n = std::size_t{1} << m;
    const Permutation pi = random_perm(n, rng);

    const BnbNetwork behavioral(m);
    const BnbElementSim element(m);
    const BitSlicedBnb sliced(m, 8);
    const GateLevelBnb gates(m);

    const auto b = behavioral.route(pi);
    const auto e = element.route(pi);
    ASSERT_TRUE(b.self_routed);
    ASSERT_EQ(b.dest, e.dest) << "m=" << m << " " << pi.to_string();

    const auto s = sliced.route(pi);
    ASSERT_TRUE(s.self_routed) << "m=" << m;
    const auto g = gates.route(pi);
    ASSERT_TRUE(g.self_routed) << "m=" << m;
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(s.outputs[line].address, b.outputs[line].address);
      ASSERT_EQ(g.output_addresses[line], b.outputs[line].address);
    }
  }
}

TEST(Differential, AllNetworksAgreeOnWordPlacement) {
  Rng rng(0xD2FF);
  for (int round = 0; round < 40; ++round) {
    const unsigned m = 2 + static_cast<unsigned>(rng.below(5));  // N = 4..64
    const std::size_t n = std::size_t{1} << m;
    const Permutation pi = random_perm(n, rng);
    std::vector<Word> words(n);
    for (std::size_t j = 0; j < n; ++j) {
      words[j] = Word{pi(j), rng.next() & 0xFFULL};
    }

    const auto reference = Crossbar(n).route_words(words).outputs;
    ASSERT_EQ(BnbNetwork(m).route_words(words).outputs, reference) << "m=" << m;
    ASSERT_EQ(BatcherNetwork(m).route_words(words).outputs, reference);
    ASSERT_EQ(BitonicNetwork(m).route_words(words).outputs, reference);
    ASSERT_EQ(BenesNetwork(m).route_words(words).outputs, reference);
    ASSERT_EQ(KoppelmanSrpn(m).route_words(words).outputs, reference);
    ASSERT_EQ(CellularArray(n).route_words(words).outputs, reference);
  }
}

TEST(Differential, RepeatedRoutingIsIdempotent) {
  // Routing the already-delivered words (address == line) must be the
  // identity on every network.
  Rng rng(0xD3FF);
  const unsigned m = 5;
  const std::size_t n = 32;
  const Permutation pi = random_perm(n, rng);
  const BnbNetwork net(m);
  const auto first = net.route(pi);
  ASSERT_TRUE(first.self_routed);
  const auto second = net.route_words(first.outputs);
  ASSERT_TRUE(second.self_routed);
  EXPECT_EQ(second.outputs, first.outputs);
}

TEST(Differential, SettleTimesAgreeBetweenModels) {
  // Element-sim settle time vs delay-graph critical path, computed by two
  // unrelated code paths.
  Rng rng(0xD4FF);
  for (const unsigned m : {2U, 4U, 6U, 8U}) {
    const BnbElementSim element(m);
    const auto sim_result = element.route(random_perm(std::size_t{1} << m, rng), 1.7, 3.1);
    const auto graph_result =
        BnbNetlist(m, 0).critical_path(1.7, 3.1);
    EXPECT_DOUBLE_EQ(sim_result.settle_time, graph_result.delay) << "m=" << m;
  }
}

}  // namespace
}  // namespace bnb
