// Fig. 5: the arbiter function node.  Verifies the behavioral truth
// function, the gate-level realization, and their equivalence.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "core/arbiter.hpp"
#include "sim/gates.hpp"

namespace bnb {
namespace {

TEST(FunctionNode, Type1PairGeneratesFlagsItself) {
  // Rule 2: XOR of inputs is 0 -> y1 = 0, y2 = 1 regardless of z_d.
  for (const unsigned x : {0U, 1U}) {
    for (const unsigned zd : {0U, 1U}) {
      const auto out = function_node(x, x, zd);
      EXPECT_EQ(out.z_u, 0U);
      EXPECT_EQ(out.y1, 0U);
      EXPECT_EQ(out.y2, 1U);
    }
  }
}

TEST(FunctionNode, Type2PairForwardsParentFlag) {
  // Rule 3: XOR of inputs is 1 -> both children receive z_d.
  for (const unsigned zd : {0U, 1U}) {
    for (const auto& [x1, x2] : {std::pair{0U, 1U}, std::pair{1U, 0U}}) {
      const auto out = function_node(x1, x2, zd);
      EXPECT_EQ(out.z_u, 1U);
      EXPECT_EQ(out.y1, zd);
      EXPECT_EQ(out.y2, zd);
    }
  }
}

TEST(FunctionNode, SendsUpXor) {
  EXPECT_EQ(function_node(0, 0, 0).z_u, 0U);
  EXPECT_EQ(function_node(0, 1, 0).z_u, 1U);
  EXPECT_EQ(function_node(1, 0, 1).z_u, 1U);
  EXPECT_EQ(function_node(1, 1, 1).z_u, 0U);
}

TEST(FunctionNode, RejectsNonBits) {
  EXPECT_THROW((void)function_node(2, 0, 0), contract_violation);
  EXPECT_THROW((void)function_node(0, 2, 0), contract_violation);
  EXPECT_THROW((void)function_node(0, 0, 2), contract_violation);
}

TEST(FunctionNode, GateLevelMatchesBehavioralOnAllInputs) {
  sim::GateNetlist net;
  const auto x1 = net.add_input("x1");
  const auto x2 = net.add_input("x2");
  const auto zd = net.add_input("z_d");
  const auto node = build_function_node(net, x1, x2, zd);

  for (const unsigned vx1 : {0U, 1U}) {
    for (const unsigned vx2 : {0U, 1U}) {
      for (const unsigned vzd : {0U, 1U}) {
        const auto values = net.evaluate({vx1 != 0, vx2 != 0, vzd != 0});
        const auto expect = function_node(vx1, vx2, vzd);
        EXPECT_EQ(values[node.z_u], expect.z_u != 0);
        EXPECT_EQ(values[node.y1], expect.y1 != 0);
        EXPECT_EQ(values[node.y2], expect.y2 != 0);
      }
    }
  }
}

TEST(FunctionNode, GateLevelIsFewGates) {
  // The paper stresses the node "consists of few gates"; ours uses 4
  // (XOR, AND, NOT, OR) at depth 2 — one D_FN in the element model.
  sim::GateNetlist net;
  const auto x1 = net.add_input();
  const auto x2 = net.add_input();
  const auto zd = net.add_input();
  build_function_node(net, x1, x2, zd);
  EXPECT_LE(net.logic_gate_count(), 4U);
  EXPECT_LE(net.depth(), 2U);
}

}  // namespace
}  // namespace bnb
