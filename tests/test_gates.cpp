#include "sim/gates.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace bnb::sim {
namespace {

TEST(Gates, PrimitivesTruthTables) {
  GateNetlist net;
  const auto a = net.add_input("a");
  const auto b = net.add_input("b");
  const auto g_not = net.add_not(a);
  const auto g_and = net.add_and(a, b);
  const auto g_or = net.add_or(a, b);
  const auto g_xor = net.add_xor(a, b);
  const auto g_nand = net.add_nand(a, b);
  const auto g_nor = net.add_nor(a, b);
  const auto g_xnor = net.add_xnor(a, b);

  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto v = net.evaluate({va, vb});
      EXPECT_EQ(v[g_not], !va);
      EXPECT_EQ(v[g_and], va && vb);
      EXPECT_EQ(v[g_or], va || vb);
      EXPECT_EQ(v[g_xor], va != vb);
      EXPECT_EQ(v[g_nand], !(va && vb));
      EXPECT_EQ(v[g_nor], !(va || vb));
      EXPECT_EQ(v[g_xnor], va == vb);
    }
  }
}

TEST(Gates, MuxSelects) {
  GateNetlist net;
  const auto s = net.add_input();
  const auto a = net.add_input();
  const auto b = net.add_input();
  const auto m = net.add_mux(s, a, b);
  EXPECT_TRUE(net.evaluate({false, true, false})[m]);   // s=0 -> a
  EXPECT_FALSE(net.evaluate({false, false, true})[m]);
  EXPECT_TRUE(net.evaluate({true, false, true})[m]);    // s=1 -> b
  EXPECT_FALSE(net.evaluate({true, true, false})[m]);
}

TEST(Gates, Constants) {
  GateNetlist net;
  const auto zero = net.add_const(false);
  const auto one = net.add_const(true);
  const auto v = net.evaluate({});
  EXPECT_FALSE(v[zero]);
  EXPECT_TRUE(v[one]);
}

TEST(Gates, CountsSeparateLogicFromInputs) {
  GateNetlist net;
  const auto a = net.add_input();
  const auto b = net.add_input();
  net.add_const(true);
  net.add_xor(a, b);
  net.add_not(a);
  EXPECT_EQ(net.input_count(), 2U);
  EXPECT_EQ(net.gate_count(), 5U);
  EXPECT_EQ(net.logic_gate_count(), 2U);
}

TEST(Gates, DepthIsLongestChain) {
  GateNetlist net;
  const auto a = net.add_input();
  const auto b = net.add_input();
  auto x = net.add_xor(a, b);   // depth 1
  x = net.add_and(x, a);        // depth 2
  x = net.add_or(x, b);         // depth 3
  net.add_not(a);               // depth 1, not on the critical chain
  EXPECT_EQ(net.depth(), 3U);
}

TEST(Gates, EvaluateChecksInputArity) {
  GateNetlist net;
  net.add_input();
  EXPECT_THROW((void)net.evaluate({}), bnb::contract_violation);
  EXPECT_THROW((void)net.evaluate({true, false}), bnb::contract_violation);
}

TEST(Gates, OperandsMustExist) {
  GateNetlist net;
  const auto a = net.add_input();
  EXPECT_THROW(net.add_and(a, 5), bnb::contract_violation);
}

}  // namespace
}  // namespace bnb::sim
