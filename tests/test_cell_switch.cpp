// The VOQ cell switch on the BNB fabric.
#include "fabric/cell_switch.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace bnb {
namespace {

TEST(CellSwitch, ZeroLoadDoesNothing) {
  const CellSwitch sw(4);
  const auto stats = sw.run_uniform(0.0, 100, 1);
  EXPECT_EQ(stats.offered, 0U);
  EXPECT_EQ(stats.delivered, 0U);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.cycles, 100U);
}

TEST(CellSwitch, LightLoadLowLatency) {
  const CellSwitch sw(5);
  const auto stats = sw.run_uniform(0.1, 2000, 2);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.offered, 0U);
  EXPECT_EQ(stats.delivered, stats.offered);
  // At 10% load almost every cell is served on its next cell time.
  EXPECT_LT(stats.mean_latency, 2.0);
  EXPECT_GE(stats.mean_latency, 1.0);  // service takes at least one cycle
}

TEST(CellSwitch, ModerateLoadStableAndDrains) {
  const CellSwitch sw(5);
  const auto stats = sw.run_uniform(0.6, 3000, 3);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.delivered, stats.offered);
  // Stable: backlog bounded far below offered volume.
  EXPECT_LT(stats.peak_backlog, stats.offered / 4);
  EXPECT_NEAR(stats.throughput(), 0.6 * 32, 0.1 * 32);
}

TEST(CellSwitch, HeavyAdmissibleLoadStillDrains) {
  const CellSwitch sw(4);
  const auto stats = sw.run_uniform(0.9, 3000, 4);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.delivered, stats.offered);
  EXPECT_GE(stats.p99_latency, stats.mean_latency);
  EXPECT_GE(stats.max_latency, stats.p99_latency);
}

TEST(CellSwitch, DeterministicForSeed) {
  const CellSwitch sw(4);
  const auto a = sw.run_uniform(0.5, 500, 77);
  const auto b = sw.run_uniform(0.5, 500, 77);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

TEST(CellSwitch, LatencyGrowsWithLoad) {
  const CellSwitch sw(5);
  const auto low = sw.run_uniform(0.2, 2000, 5);
  const auto high = sw.run_uniform(0.85, 2000, 5);
  EXPECT_TRUE(low.drained);
  EXPECT_TRUE(high.drained);
  EXPECT_GT(high.mean_latency, low.mean_latency);
}

TEST(CellSwitch, FullLoadKeepsFabricBusy) {
  const CellSwitch sw(3);
  const auto stats = sw.run_uniform(1.0, 2000, 6, 200000);
  // At load 1.0 with uniform destinations the matcher can't always serve
  // everyone, but the run must still drain once arrivals stop.
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.delivered, stats.offered);
}

TEST(CellSwitch, InvalidLoadRejected) {
  const CellSwitch sw(3);
  EXPECT_THROW((void)sw.run_uniform(1.5, 10, 1), contract_violation);
  EXPECT_THROW((void)sw.run_uniform(-0.1, 10, 1), contract_violation);
  EXPECT_THROW((void)sw.run_hotspot(0.5, 1.5, 10, 1), contract_violation);
}

TEST(CellSwitch, MildHotspotStaysStable) {
  // load * N * hot_share = 0.5 * 16 * 0.1 = 0.8 < 1: admissible.
  const CellSwitch sw(4);
  const auto stats = sw.run_hotspot(0.5, 0.1, 2000, 8);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.final_backlog, 0U);
}

TEST(CellSwitch, SevereHotspotSaturatesOutputZero) {
  // load * N * hot_share = 0.8 * 16 * 0.5 = 6.4 >> 1: output 0 can serve
  // only one cell per cycle, so backlog grows ~ (6.4 - 1) per cycle and the
  // bounded drain window cannot clear it.
  const CellSwitch sw(4);
  const auto stats = sw.run_hotspot(0.8, 0.5, 2000, 9, /*max_drain_cycles=*/500);
  EXPECT_FALSE(stats.drained);
  EXPECT_GT(stats.final_backlog, 2000U);
  // Delivered cells still audited and bounded by one per output per cycle.
  EXPECT_LE(stats.delivered, stats.cycles * 16);
}

TEST(CellSwitch, HotspotZeroShareMatchesUniformShape) {
  const CellSwitch sw(4);
  const auto hot = sw.run_hotspot(0.4, 0.0, 1000, 10);
  EXPECT_TRUE(hot.drained);
  EXPECT_GT(hot.offered, 0U);
}

}  // namespace
}  // namespace bnb
