#include "sim/delay_graph.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace bnb::sim {
namespace {

TEST(DelayUnits, Evaluate) {
  const DelayUnits u{3, 2, 1};
  EXPECT_DOUBLE_EQ(u.evaluate(1.0, 1.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(u.evaluate(2.0, 0.5, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(u.evaluate(0.0, 1.0), 3.0);  // d_add defaults to 1
  EXPECT_DOUBLE_EQ(u.evaluate(0.0, 1.0, 0.0), 2.0);
}

TEST(DelayUnits, Accumulate) {
  DelayUnits a{1, 2, 3};
  const DelayUnits b{10, 20, 30};
  a += b;
  EXPECT_EQ(a, (DelayUnits{11, 22, 33}));
}

TEST(DelayGraph, EmptyGraphZeroPath) {
  const DelayGraph g;
  const auto r = g.critical_path(1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.delay, 0.0);
  EXPECT_EQ(r.terminal, DelayGraph::kNoNode);
}

TEST(DelayGraph, SingleChain) {
  DelayGraph g;
  auto s = g.add_source();
  auto a = g.add_node({1, 0, 0}, {s});
  auto b = g.add_node({0, 1, 0}, {a});
  auto c = g.add_node({1, 0, 0}, {b});
  const auto r = g.critical_path(1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.delay, 3.0);
  EXPECT_EQ(r.units, (DelayUnits{2, 1, 0}));
  EXPECT_EQ(r.terminal, c);
}

TEST(DelayGraph, PicksHeavierBranch) {
  DelayGraph g;
  auto s = g.add_source();
  // Branch 1: two switch units.  Branch 2: one fn unit.
  auto a1 = g.add_node({1, 0, 0}, {s});
  auto a2 = g.add_node({1, 0, 0}, {a1});
  auto b1 = g.add_node({0, 1, 0}, {s});
  auto join = g.add_node({0, 0, 0}, {a2, b1});
  (void)join;

  // With D_SW = D_FN = 1 the switch branch (2.0) wins.
  auto r = g.critical_path(1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.delay, 2.0);
  EXPECT_EQ(r.units, (DelayUnits{2, 0, 0}));

  // With expensive function nodes the fn branch wins.
  r = g.critical_path(1.0, 5.0);
  EXPECT_DOUBLE_EQ(r.delay, 5.0);
  EXPECT_EQ(r.units, (DelayUnits{0, 1, 0}));
}

TEST(DelayGraph, IgnoresNoNodePreds) {
  DelayGraph g;
  auto s = g.add_source();
  auto a = g.add_node({1, 0, 0}, {s, DelayGraph::kNoNode});
  (void)a;
  EXPECT_DOUBLE_EQ(g.critical_path(1.0, 1.0).delay, 1.0);
}

TEST(DelayGraph, ForwardEdgesRejected) {
  DelayGraph g;
  auto s = g.add_source();
  (void)s;
  EXPECT_THROW(g.add_node({}, {5}), bnb::contract_violation);
}

TEST(DelayGraph, AdderUnitsCounted) {
  DelayGraph g;
  auto s = g.add_source();
  auto a = g.add_node({0, 0, 4}, {s});
  (void)a;
  const auto r = g.critical_path(1.0, 1.0, 2.5);
  EXPECT_DOUBLE_EQ(r.delay, 10.0);
  EXPECT_EQ(r.units.add, 4U);
}

TEST(DelayGraph, WideFanInTakesMax) {
  DelayGraph g;
  std::vector<DelayGraph::NodeId> preds;
  for (int i = 0; i < 10; ++i) {
    auto s = g.add_source();
    preds.push_back(g.add_node({static_cast<std::uint64_t>(i), 0, 0}, {s}));
  }
  auto join = g.add_node({0, 1, 0}, preds);
  (void)join;
  const auto r = g.critical_path(1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.delay, 10.0);  // 9 sw + 1 fn
  EXPECT_EQ(r.units, (DelayUnits{9, 1, 0}));
}

}  // namespace
}  // namespace bnb::sim
