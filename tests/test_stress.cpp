// Large-scale stress: each case runs one big instance end-to-end within a
// few seconds, exercising allocation paths and index arithmetic that small
// N never touches (multi-word BitVec planes, >16-bit line indices, deep
// recursion in Benes set-up).
#include <gtest/gtest.h>

#include "baselines/batcher.hpp"
#include "baselines/benes.hpp"
#include "baselines/koppelman.hpp"
#include "common/rng.hpp"
#include "core/bit_sliced.hpp"
#include "core/bnb_network.hpp"
#include "core/element_sim.hpp"
#include "fabric/pipeline.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Stress, Bnb64kLines) {
  Rng rng(901);
  const BnbNetwork net(16);
  const Permutation pi = random_perm(net.inputs(), rng);
  const auto r = net.route(pi);
  EXPECT_TRUE(r.self_routed);
  // Spot-check destinations across the full range.
  for (std::size_t j = 0; j < net.inputs(); j += 4097) {
    EXPECT_EQ(r.dest[j], pi(j));
  }
}

TEST(Stress, ElementSim4kLines) {
  Rng rng(902);
  const BnbElementSim sim(12);
  const auto r = sim.route(random_perm(4096, rng));
  EXPECT_TRUE(r.self_routed);
}

TEST(Stress, BitSliced1kLinesWideWords) {
  Rng rng(903);
  const BitSlicedBnb sliced(10, 32);
  const std::size_t n = 1024;
  const Permutation pi = random_perm(n, rng);
  std::vector<Word> words(n);
  for (std::size_t j = 0; j < n; ++j) {
    words[j] = Word{pi(j), rng.next() & 0xFFFFFFFFULL};
  }
  const auto r = sliced.route_words(words);
  ASSERT_TRUE(r.self_routed);
  const Permutation inv = pi.inverse();
  for (std::size_t line = 0; line < n; line += 97) {
    EXPECT_EQ(r.outputs[line].payload, words[inv(line)].payload);
  }
}

TEST(Stress, Batcher16kLines) {
  Rng rng(904);
  const BatcherNetwork net(14);
  EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed);
}

TEST(Stress, Benes32kLines) {
  Rng rng(905);
  const BenesNetwork net(15);
  EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed);
}

TEST(Stress, Waksman16kLines) {
  Rng rng(906);
  const BenesNetwork net(14, true);
  EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed);
}

TEST(Stress, Koppelman32kLines) {
  Rng rng(907);
  const KoppelmanSrpn net(15);
  EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed);
}

TEST(Stress, PipelineLongStream) {
  Rng rng(908);
  const PipelinedFabric fabric(PipelinedFabric::Kind::kBnb, 6);
  std::vector<Permutation> stream;
  stream.reserve(300);
  for (int i = 0; i < 300; ++i) stream.push_back(random_perm(64, rng));
  const auto stats = fabric.run_stream(stream);
  EXPECT_TRUE(stats.all_delivered);
  EXPECT_EQ(stats.words_delivered, 300U * 64);
}

TEST(Stress, RepeatedSmallRoutesNoStateLeak) {
  // The same network object must be reusable indefinitely (const route).
  Rng rng(909);
  const BnbNetwork net(6);
  for (int round = 0; round < 2000; ++round) {
    ASSERT_TRUE(net.route(random_perm(64, rng)).self_routed);
  }
}

}  // namespace
}  // namespace bnb
