// BENCH_routing.json is the repo's recorded perf baseline; docs/PERF.md
// documents its schema (bnb.bench_routing.v7).  This test parses the
// checked-in file with a minimal JSON reader and validates the schema, so
// a bench_engine change that drifts the emitted shape fails CI instead of
// silently invalidating the regression baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

// ---- A deliberately small JSON reader (objects/arrays/strings/numbers/
// bools/null; no \u escapes — the bench file needs none). ----------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value;

  [[nodiscard]] bool is_object() const { return value.index() == 5; }
  [[nodiscard]] bool is_array() const { return value.index() == 4; }
  [[nodiscard]] bool is_string() const { return value.index() == 3; }
  [[nodiscard]] bool is_number() const { return value.index() == 2; }
  [[nodiscard]] bool is_bool() const { return value.index() == 1; }
  [[nodiscard]] bool boolean() const { return std::get<bool>(value); }
  [[nodiscard]] const JsonObject& object() const { return std::get<JsonObject>(value); }
  [[nodiscard]] const JsonArray& array() const { return std::get<JsonArray>(value); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(value); }
  [[nodiscard]] double num() const { return std::get<double>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  std::shared_ptr<JsonValue> parse() {
    auto v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      return std::make_shared<JsonValue>(JsonValue{parse_string()});
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  std::shared_ptr<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::make_shared<JsonValue>(
        JsonValue{std::stod(text_.substr(start, pos_ - start))});
  }

  std::shared_ptr<JsonValue> parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return std::make_shared<JsonValue>(JsonValue{true});
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return std::make_shared<JsonValue>(JsonValue{false});
    }
    fail("expected bool");
  }

  std::shared_ptr<JsonValue> parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return std::make_shared<JsonValue>(JsonValue{nullptr});
  }

  std::shared_ptr<JsonValue> parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return std::make_shared<JsonValue>(JsonValue{std::move(obj)});
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return std::make_shared<JsonValue>(JsonValue{std::move(obj)});
    }
  }

  std::shared_ptr<JsonValue> parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return std::make_shared<JsonValue>(JsonValue{std::move(arr)});
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return std::make_shared<JsonValue>(JsonValue{std::move(arr)});
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::shared_ptr<JsonValue> load_bench_json() {
  const std::string path = std::string(BNB_REPO_ROOT) + "/BENCH_routing.json";
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return JsonParser(buffer.str()).parse();
}

const JsonValue& field(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  EXPECT_TRUE(it != obj.end()) << "missing field \"" << key << "\"";
  if (it == obj.end()) {
    static const JsonValue null_value{nullptr};
    return null_value;
  }
  return *it->second;
}

TEST(BenchRoutingJson, MatchesTheDocumentedSchema) {
  const auto root = load_bench_json();
  ASSERT_TRUE(root != nullptr);
  ASSERT_TRUE(root->is_object());
  const JsonObject& top = root->object();

  // Header.
  ASSERT_TRUE(field(top, "schema").is_string());
  EXPECT_EQ(field(top, "schema").str(), "bnb.bench_routing.v7");
  ASSERT_TRUE(field(top, "generated_by").is_string());
  ASSERT_TRUE(field(top, "hardware_threads").is_number());
  const double hardware_threads = field(top, "hardware_threads").num();
  EXPECT_GE(hardware_threads, 1.0);

  // kernels: the dispatch report — which tier the run selected, every tier
  // the host could run, and the per-tier microbenchmark rows at one fixed
  // m.  "scalar" leads the available list and anchors speedup_vs_scalar.
  ASSERT_TRUE(field(top, "kernels").is_object());
  const JsonObject& kernels = field(top, "kernels").object();
  ASSERT_TRUE(field(kernels, "selected").is_string());
  ASSERT_TRUE(field(kernels, "wide_datapath").is_bool());
  ASSERT_TRUE(field(kernels, "m").is_number());
  ASSERT_TRUE(field(kernels, "available").is_array());
  const JsonArray& available = field(kernels, "available").array();
  ASSERT_FALSE(available.empty());
  std::vector<std::string> tier_names;
  for (const auto& name_value : available) {
    ASSERT_TRUE(name_value->is_string());
    tier_names.push_back(name_value->str());
  }
  EXPECT_EQ(tier_names.front(), "scalar") << "scalar reference must lead";
  EXPECT_TRUE(std::find(tier_names.begin(), tier_names.end(),
                        field(kernels, "selected").str()) != tier_names.end())
      << "selected tier must be one of \"available\"";
  ASSERT_TRUE(field(kernels, "tiers").is_array());
  const JsonArray& tier_rows = field(kernels, "tiers").array();
  ASSERT_EQ(tier_rows.size(), tier_names.size())
      << "one microbenchmark row per available tier";
  double scalar_ns = 0;
  for (std::size_t i = 0; i < tier_rows.size(); ++i) {
    ASSERT_TRUE(tier_rows[i]->is_object());
    const JsonObject& row = tier_rows[i]->object();
    ASSERT_TRUE(field(row, "name").is_string());
    EXPECT_EQ(field(row, "name").str(), tier_names[i])
        << "tiers rows must follow the \"available\" order";
    ASSERT_TRUE(field(row, "wide_datapath").is_bool());
    ASSERT_TRUE(field(row, "ns_per_perm").is_number());
    ASSERT_TRUE(field(row, "speedup_vs_scalar").is_number());
    const double ns = field(row, "ns_per_perm").num();
    EXPECT_GT(ns, 0.0);
    if (i == 0) {
      scalar_ns = ns;
      EXPECT_FALSE(field(row, "wide_datapath").boolean())
          << "the scalar reference routes per-line";
      EXPECT_NEAR(field(row, "speedup_vs_scalar").num(), 1.0, 0.005);
    } else {
      EXPECT_NEAR(field(row, "speedup_vs_scalar").num(), scalar_ns / ns, 0.05)
          << "speedup_vs_scalar inconsistent for " << tier_names[i];
    }
  }

  // single_thread: rows of {m, n, seed_ns_per_perm, compiled_ns_per_perm,
  // speedup}, n = 2^m, speedup consistent with the two timings.
  ASSERT_TRUE(field(top, "single_thread").is_array());
  const JsonArray& rows = field(top, "single_thread").array();
  ASSERT_FALSE(rows.empty());
  double prev_m = 0;
  for (const auto& row_value : rows) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    for (const char* key :
         {"m", "n", "seed_ns_per_perm", "compiled_ns_per_perm", "speedup"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    const double m = field(row, "m").num();
    const double n = field(row, "n").num();
    EXPECT_GT(m, prev_m) << "rows must be sorted by m, strictly increasing";
    prev_m = m;
    EXPECT_EQ(n, static_cast<double>(1ULL << static_cast<unsigned>(m)));
    const double seed_ns = field(row, "seed_ns_per_perm").num();
    const double compiled_ns = field(row, "compiled_ns_per_perm").num();
    const double speedup = field(row, "speedup").num();
    EXPECT_GT(seed_ns, 0.0);
    EXPECT_GT(compiled_ns, 0.0);
    EXPECT_NEAR(speedup, seed_ns / compiled_ns, 0.05)
        << "speedup column inconsistent at m=" << m;
  }

  // batch: {m, permutations, results: [{threads, ns_per_perm,
  // perms_per_sec, scaling, oversubscribed}]}, threads strictly increasing,
  // scaling anchored at 1.0 for the first row.  A row may exceed the host's
  // hardware threads only when it says so (oversubscribed = true, emitted
  // under --force-threads).
  ASSERT_TRUE(field(top, "batch").is_object());
  const JsonObject& batch = field(top, "batch").object();
  ASSERT_TRUE(field(batch, "m").is_number());
  ASSERT_TRUE(field(batch, "permutations").is_number());
  EXPECT_GE(field(batch, "permutations").num(), 1.0);
  ASSERT_TRUE(field(batch, "results").is_array());
  const JsonArray& results = field(batch, "results").array();
  // v3: bench_engine always times threads=2 (flagged oversubscribed on a
  // 1-core host), so the checked-in file always keeps a scaling curve.
  ASSERT_GE(results.size(), 2U) << "batch section must hold a scaling curve";
  double prev_threads = 0;
  double base_ns = 0;
  for (const auto& row_value : results) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    for (const char* key : {"threads", "ns_per_perm", "perms_per_sec", "scaling"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    ASSERT_TRUE(field(row, "oversubscribed").is_bool());
    const double threads = field(row, "threads").num();
    EXPECT_GT(threads, prev_threads) << "thread counts must increase";
    prev_threads = threads;
    if (!field(row, "oversubscribed").boolean()) {
      EXPECT_LE(threads, hardware_threads)
          << "a non-oversubscribed row cannot exceed the host's cores";
    }
    const double ns = field(row, "ns_per_perm").num();
    EXPECT_GT(ns, 0.0);
    if (base_ns == 0) {
      base_ns = ns;
      EXPECT_NEAR(field(row, "scaling").num(), 1.0, 0.005);
    } else {
      EXPECT_NEAR(field(row, "scaling").num(), base_ns / ns, 0.05);
    }
    EXPECT_NEAR(field(row, "perms_per_sec").num(), 1e9 / ns,
                1e9 / ns * 0.01)
        << "perms_per_sec must be the double 1e9 / ns_per_perm";
  }

  // cache (v3): ScheduleCache cold-vs-warm economics.  warm_speedup is the
  // recorded repeated-traffic payoff and must be consistent with the two
  // timings; the recorded run itself must be hit-dominated and bypass-free.
  ASSERT_TRUE(field(top, "cache").is_object());
  const JsonObject& cache = field(top, "cache").object();
  for (const char* key : {"m", "capacity", "pool", "cold_ns_per_perm",
                          "warm_ns_per_perm", "warm_speedup", "hits", "misses",
                          "evictions", "bypasses", "contended_m",
                          "probe_len_avg", "probe_len_max_bucket"}) {
    ASSERT_TRUE(field(cache, key).is_number()) << key;
  }
  const double cold_ns = field(cache, "cold_ns_per_perm").num();
  const double warm_ns = field(cache, "warm_ns_per_perm").num();
  EXPECT_GT(cold_ns, 0.0);
  EXPECT_GT(warm_ns, 0.0);
  EXPECT_NEAR(field(cache, "warm_speedup").num(), cold_ns / warm_ns, 0.05)
      << "warm_speedup inconsistent with its timings";
  EXPECT_GE(field(cache, "warm_speedup").num(), 1.0)
      << "a cache hit can never be slower than the cold solve it skips";
  EXPECT_GE(field(cache, "capacity").num(), field(cache, "pool").num())
      << "the recorded warm run must fit its pool in the cache";
  EXPECT_GT(field(cache, "hits").num(), field(cache, "misses").num())
      << "the recorded warm run is hit-dominated by construction";
  EXPECT_EQ(field(cache, "bypasses").num(), 0.0)
      << "no fault/trace traffic in the recorded run";

  // cache.contended (v6): warm-hit latency of the seqlock flat store vs the
  // reconstructed PR4 mutex+LRU baseline under 1/2/4/8 reader threads.  The
  // flat store must win single-threaded (>= 1.05x: no mutex, no shared_ptr
  // copy, no LRU splice) and by >= 2x wherever the host genuinely runs 4+
  // readers in parallel — oversubscribed rows time time-slicing, not
  // contention, so the 2x bar only applies to real-parallel rows.
  EXPECT_GE(field(cache, "probe_len_avg").num(), 1.0)
      << "every lookup probes at least one slot";
  EXPECT_GE(field(cache, "probe_len_max_bucket").num(),
            field(cache, "probe_len_avg").num());
  ASSERT_TRUE(field(cache, "contended").is_array());
  const JsonArray& contended = field(cache, "contended").array();
  ASSERT_GE(contended.size(), 2U)
      << "contended section must hold a thread-scaling curve";
  double prev_cont_threads = 0;
  for (const auto& row_value : contended) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    for (const char* key : {"threads", "old_hit_ns", "new_hit_ns", "speedup"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    ASSERT_TRUE(field(row, "oversubscribed").is_bool());
    const double threads = field(row, "threads").num();
    EXPECT_GT(threads, prev_cont_threads) << "thread counts must increase";
    prev_cont_threads = threads;
    if (!field(row, "oversubscribed").boolean()) {
      EXPECT_LE(threads, hardware_threads)
          << "a non-oversubscribed row cannot exceed the host's cores";
    }
    const double old_ns = field(row, "old_hit_ns").num();
    const double new_ns = field(row, "new_hit_ns").num();
    const double speedup = field(row, "speedup").num();
    EXPECT_GT(old_ns, 0.0);
    EXPECT_GT(new_ns, 0.0);
    EXPECT_NEAR(speedup, old_ns / new_ns, old_ns / new_ns * 0.01)
        << "speedup inconsistent at threads=" << threads;
    if (threads == 1.0) {
      EXPECT_GE(speedup, 1.05)
          << "acceptance bar: the seqlock flat store must beat the mutex+LRU "
             "baseline even uncontended";
    }
    if (threads >= 4.0 && !field(row, "oversubscribed").boolean()) {
      EXPECT_GE(speedup, 2.0)
          << "acceptance bar: lock-free readers must beat the mutex >= 2x "
             "under real 4+-thread contention";
    }
  }

  // small (v5): the register-resident small-N lane.  One row per m in
  // 4..6, each comparing the pre-lane warm path (general-lane find +
  // schedule apply) against the flat SmallSchedule replay; the recorded
  // speedups are the lane's acceptance bars — apply must beat the general
  // warm path >= 10x at m = 6, and apply8 must beat scalar apply >= 3x
  // when the run used an AVX-512 kernel tier.
  ASSERT_TRUE(field(top, "small").is_object());
  const JsonObject& small = field(top, "small").object();
  ASSERT_TRUE(field(small, "pool").is_number());
  ASSERT_TRUE(field(small, "apply8_tier").is_string());
  const std::string& apply8_tier = field(small, "apply8_tier").str();
  EXPECT_TRUE(std::find(tier_names.begin(), tier_names.end(), apply8_tier) !=
              tier_names.end())
      << "apply8_tier must be one of kernels.available";
  ASSERT_TRUE(field(small, "results").is_array());
  const JsonArray& small_rows = field(small, "results").array();
  ASSERT_EQ(small_rows.size(), 3U) << "one row per m in {4, 5, 6}";
  double small_prev_m = 0;
  for (const auto& row_value : small_rows) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    for (const char* key :
         {"m", "n", "general_warm_ns_per_perm", "small_route_warm_ns_per_perm",
          "apply_ns_per_perm", "apply8_ns_per_perm", "apply_speedup_vs_general",
          "apply8_speedup_vs_apply"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    const double m = field(row, "m").num();
    EXPECT_GT(m, small_prev_m) << "rows must be sorted by m, strictly increasing";
    small_prev_m = m;
    EXPECT_LE(m, 6.0) << "the small lane ends at m = 6 (one word of state)";
    EXPECT_EQ(field(row, "n").num(),
              static_cast<double>(1ULL << static_cast<unsigned>(m)));
    const double general_ns = field(row, "general_warm_ns_per_perm").num();
    const double small_route_ns = field(row, "small_route_warm_ns_per_perm").num();
    const double apply_ns = field(row, "apply_ns_per_perm").num();
    const double apply8_ns = field(row, "apply8_ns_per_perm").num();
    EXPECT_GT(general_ns, 0.0);
    EXPECT_GT(small_route_ns, 0.0);
    EXPECT_GT(apply_ns, 0.0);
    EXPECT_GT(apply8_ns, 0.0);
    EXPECT_NEAR(field(row, "apply_speedup_vs_general").num(), general_ns / apply_ns,
                general_ns / apply_ns * 0.01)
        << "apply_speedup_vs_general inconsistent at m=" << m;
    EXPECT_NEAR(field(row, "apply8_speedup_vs_apply").num(), apply_ns / apply8_ns,
                apply_ns / apply8_ns * 0.01)
        << "apply8_speedup_vs_apply inconsistent at m=" << m;
    if (m == 6.0) {
      EXPECT_GE(field(row, "apply_speedup_vs_general").num(), 10.0)
          << "acceptance bar: the flat replay must beat the general warm "
             "path >= 10x at m = 6";
    }
    if (apply8_tier.rfind("avx512", 0) == 0) {
      EXPECT_GE(field(row, "apply8_speedup_vs_apply").num(), 3.0)
          << "acceptance bar: apply8 must beat scalar apply >= 3x on an "
             "AVX-512 tier (m=" << m << ")";
    }
  }

  // stream (v3): StreamEngine rows {threads, pipelined, cached,
  // ns_per_perm, perms_per_sec, oversubscribed}.
  ASSERT_TRUE(field(top, "stream").is_object());
  const JsonObject& stream = field(top, "stream").object();
  ASSERT_TRUE(field(stream, "m").is_number());
  ASSERT_TRUE(field(stream, "permutations").is_number());
  EXPECT_GE(field(stream, "permutations").num(), 1.0);
  ASSERT_TRUE(field(stream, "results").is_array());
  const JsonArray& stream_rows = field(stream, "results").array();
  ASSERT_GE(stream_rows.size(), 2U)
      << "stream section must compare at least inline vs pipelined";
  bool saw_pipelined = false;
  bool saw_cached = false;
  for (const auto& row_value : stream_rows) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    for (const char* key : {"threads", "ns_per_perm", "perms_per_sec"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    for (const char* key : {"pipelined", "cached", "oversubscribed"}) {
      ASSERT_TRUE(field(row, key).is_bool()) << key;
    }
    const double ns = field(row, "ns_per_perm").num();
    EXPECT_GT(ns, 0.0);
    EXPECT_NEAR(field(row, "perms_per_sec").num(), 1e9 / ns, 1e9 / ns * 0.01);
    saw_pipelined |= field(row, "pipelined").boolean();
    saw_cached |= field(row, "cached").boolean();
    if (!field(row, "oversubscribed").boolean()) {
      EXPECT_LE(field(row, "threads").num(), hardware_threads);
    }
  }
  EXPECT_TRUE(saw_pipelined) << "stream section must time the pipelined engine";
  EXPECT_TRUE(saw_cached) << "stream section must time the cached engine";

  // obs (v4): telemetry overhead — the same phase work timed with spans
  // runtime-enabled vs runtime-disabled.  overhead_pct must be consistent
  // with its two timings, and the recorded overhead on the hot phases
  // (route, apply) must clear the <3% acceptance bar.  Negative values are
  // fine: the span cost sits inside timing noise.
  ASSERT_TRUE(field(top, "obs").is_object());
  const JsonObject& obs = field(top, "obs").object();
  ASSERT_TRUE(field(obs, "m").is_number());
  ASSERT_TRUE(field(obs, "phases").is_array());
  const JsonArray& obs_rows = field(obs, "phases").array();
  std::vector<std::string> obs_phases;
  for (const auto& row_value : obs_rows) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    ASSERT_TRUE(field(row, "phase").is_string());
    for (const char* key :
         {"enabled_ns_per_call", "disabled_ns_per_call", "overhead_pct"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    const double enabled_ns = field(row, "enabled_ns_per_call").num();
    const double disabled_ns = field(row, "disabled_ns_per_call").num();
    const double overhead = field(row, "overhead_pct").num();
    EXPECT_GT(enabled_ns, 0.0);
    EXPECT_GT(disabled_ns, 0.0);
    EXPECT_NEAR(overhead, (enabled_ns - disabled_ns) / disabled_ns * 100.0, 0.05)
        << "overhead_pct inconsistent for phase " << field(row, "phase").str();
    obs_phases.push_back(field(row, "phase").str());
    if (field(row, "phase").str() == "route" ||
        field(row, "phase").str() == "apply") {
      EXPECT_LT(overhead, 3.0)
          << "telemetry must cost <3% on the " << field(row, "phase").str()
          << " hot path";
    }
  }
  for (const char* phase : {"route", "solve", "apply"}) {
    EXPECT_TRUE(std::find(obs_phases.begin(), obs_phases.end(), phase) !=
                obs_phases.end())
        << "obs section must record the " << phase << " phase";
  }

  // obs.tracing (v7): the marginal cost of causal tracing — the same
  // phases with a SpanTrace sink installed vs not, runtime-enabled on
  // both sides.  Every row must clear the <3% bar: tracing-on routing
  // must stay within 3% of tracing-off.
  ASSERT_TRUE(field(obs, "tracing").is_array());
  const JsonArray& tracing_rows = field(obs, "tracing").array();
  std::vector<std::string> tracing_phases;
  for (const auto& row_value : tracing_rows) {
    ASSERT_TRUE(row_value->is_object());
    const JsonObject& row = row_value->object();
    ASSERT_TRUE(field(row, "phase").is_string());
    for (const char* key :
         {"traced_ns_per_call", "untraced_ns_per_call", "overhead_pct"}) {
      ASSERT_TRUE(field(row, key).is_number()) << key;
    }
    const double traced_ns = field(row, "traced_ns_per_call").num();
    const double untraced_ns = field(row, "untraced_ns_per_call").num();
    const double overhead = field(row, "overhead_pct").num();
    EXPECT_GT(traced_ns, 0.0);
    EXPECT_GT(untraced_ns, 0.0);
    EXPECT_NEAR(overhead, (traced_ns - untraced_ns) / untraced_ns * 100.0, 0.05)
        << "overhead_pct inconsistent for traced phase "
        << field(row, "phase").str();
    EXPECT_LT(overhead, 3.0)
        << "causal tracing must cost <3% on the " << field(row, "phase").str()
        << " phase";
    tracing_phases.push_back(field(row, "phase").str());
  }
  for (const char* phase : {"route", "solve", "apply"}) {
    EXPECT_TRUE(std::find(tracing_phases.begin(), tracing_phases.end(),
                          phase) != tracing_phases.end())
        << "obs.tracing section must record the " << phase << " phase";
  }
}

}  // namespace
