#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace bnb {
namespace {

TEST(Table, RendersHeadersAndRows) {
  TablePrinter t({"N", "value"});
  t.add_row({"8", "123"});
  t.add_row({"16", "456789"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("N"), std::string::npos);
  EXPECT_NE(s.find("456789"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, RowArityChecked) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), contract_violation);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(TablePrinter({}), contract_violation);
}

TEST(Table, NumberGrouping) {
  EXPECT_EQ(TablePrinter::num(std::uint64_t{0}), "0");
  EXPECT_EQ(TablePrinter::num(std::uint64_t{999}), "999");
  EXPECT_EQ(TablePrinter::num(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(TablePrinter::num(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(TablePrinter::num(std::uint64_t{1000000000}), "1,000,000,000");
}

TEST(Table, DoubleFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::ratio(0.333333, 3), "0.333");
}

TEST(Table, ColumnsAligned) {
  TablePrinter t({"x", "longheader"});
  t.add_row({"verylongcell", "1"});
  const std::string s = t.to_string();
  // Every rendered line has the same length.
  std::size_t len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const std::size_t this_len = nl - pos;
    if (len == std::string::npos) len = this_len;
    EXPECT_EQ(this_len, len);
    pos = nl + 1;
  }
}

}  // namespace
}  // namespace bnb
