// Cross-network integration: every permutation network in the repository
// must agree on where words land, and words must arrive intact end-to-end.
#include <gtest/gtest.h>

#include "baselines/batcher.hpp"
#include "baselines/benes.hpp"
#include "baselines/cellular.hpp"
#include "baselines/crossbar.hpp"
#include "baselines/koppelman.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

std::vector<Word> make_words(const Permutation& pi) {
  std::vector<Word> words(pi.size());
  for (std::size_t j = 0; j < pi.size(); ++j) {
    words[j] = Word{pi(j), 0xF00D0000ULL + j};
  }
  return words;
}

TEST(Integration, AllNetworksDeliverIdenticalOutputs) {
  Rng rng(111);
  const unsigned m = 7;
  const std::size_t n = 1ULL << m;
  const BnbNetwork bnb(m);
  const BatcherNetwork batcher(m);
  const BenesNetwork benes(m);
  const KoppelmanSrpn koppelman(m);
  const Crossbar crossbar(n);
  const CellularArray cellular(n);

  for (int round = 0; round < 10; ++round) {
    const Permutation pi = random_perm(n, rng);
    const auto words = make_words(pi);

    const auto r_bnb = bnb.route_words(words);
    const auto r_bat = batcher.route_words(words);
    const auto r_ben = benes.route_words(words);
    const auto r_kop = koppelman.route_words(words);
    const auto r_xb = crossbar.route_words(words);
    const auto r_cell = cellular.route_words(words);

    ASSERT_TRUE(r_bnb.self_routed);
    ASSERT_TRUE(r_bat.self_routed);
    ASSERT_TRUE(r_ben.self_routed);
    ASSERT_TRUE(r_kop.self_routed);
    ASSERT_TRUE(r_xb.self_routed);
    ASSERT_TRUE(r_cell.self_routed);

    // Addresses are unique, so all networks must produce identical output
    // vectors (word w ends at line w.address in each).
    EXPECT_EQ(r_bnb.outputs, r_bat.outputs);
    EXPECT_EQ(r_bnb.outputs, r_ben.outputs);
    EXPECT_EQ(r_bnb.outputs, r_kop.outputs);
    EXPECT_EQ(r_bnb.outputs, r_xb.outputs);
    EXPECT_EQ(r_bnb.outputs, r_cell.outputs);
  }
}

TEST(Integration, RoundTripThroughInversePermutation) {
  // Route by pi, then route the outputs by pi^{-1}: every word returns to
  // its origin line.
  Rng rng(112);
  const unsigned m = 6;
  const BnbNetwork net(m);
  const Permutation pi = random_perm(64, rng);

  std::vector<Word> words(64);
  for (std::size_t j = 0; j < 64; ++j) words[j] = Word{pi(j), j};
  const auto first = net.route_words(words);
  ASSERT_TRUE(first.self_routed);

  const Permutation inv = pi.inverse();
  std::vector<Word> back(64);
  for (std::size_t line = 0; line < 64; ++line) {
    back[line] = Word{inv(line), first.outputs[line].payload};
  }
  const auto second = net.route_words(back);
  ASSERT_TRUE(second.self_routed);
  for (std::size_t line = 0; line < 64; ++line) {
    EXPECT_EQ(second.outputs[line].payload, line);
  }
}

TEST(Integration, ComposedPermutationsBehaveAsComposition) {
  Rng rng(113);
  const BnbNetwork net(5);
  const Permutation a = random_perm(32, rng);
  const Permutation b = random_perm(32, rng);
  const Permutation ab = b.compose(a);  // apply a, then b

  // Two physical passes: route by a, then route those outputs by b.
  std::vector<Word> words(32);
  for (std::size_t j = 0; j < 32; ++j) words[j] = Word{a(j), j};
  const auto pass1 = net.route_words(words);
  ASSERT_TRUE(pass1.self_routed);
  std::vector<Word> stage2(32);
  for (std::size_t line = 0; line < 32; ++line) {
    stage2[line] = Word{b(line), pass1.outputs[line].payload};
  }
  const auto pass2 = net.route_words(stage2);
  ASSERT_TRUE(pass2.self_routed);

  // One logical pass with the composed permutation.
  std::vector<Word> direct(32);
  for (std::size_t j = 0; j < 32; ++j) direct[j] = Word{ab(j), j};
  const auto composed = net.route_words(direct);
  ASSERT_TRUE(composed.self_routed);

  for (std::size_t line = 0; line < 32; ++line) {
    EXPECT_EQ(pass2.outputs[line].payload, composed.outputs[line].payload);
  }
}

TEST(Integration, EveryFamilyOnEveryNetwork) {
  const unsigned m = 5;
  const std::size_t n = 32;
  const BnbNetwork bnb(m);
  const BatcherNetwork batcher(m);
  const BenesNetwork benes(m);
  const KoppelmanSrpn koppelman(m);

  for (const auto f : all_perm_families()) {
    const Permutation pi = make_perm(f, n, 9);
    EXPECT_TRUE(bnb.route(pi).self_routed) << perm_family_name(f);
    EXPECT_TRUE(batcher.route(pi).self_routed) << perm_family_name(f);
    EXPECT_TRUE(benes.route(pi).self_routed) << perm_family_name(f);
    EXPECT_TRUE(koppelman.route(pi).self_routed) << perm_family_name(f);
  }
}

TEST(Integration, BnbAndBatcherAgreeExhaustivelyN8) {
  const BnbNetwork bnb(3);
  const BatcherNetwork batcher(3);
  Permutation pi(8);
  do {
    const auto words = make_words(pi);
    ASSERT_EQ(bnb.route_words(words).outputs, batcher.route_words(words).outputs);
  } while (pi.next_lexicographic());
}

}  // namespace
}  // namespace bnb
