// Trace rendering and Graphviz export.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/dot_export.hpp"
#include "core/trace_render.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(TraceRender, ShowsEveryStageAndBlock) {
  const BnbNetwork net(3);
  const std::string s = render_trace(net, reversal_perm(8));
  EXPECT_NE(s.find("main stage 0"), std::string::npos);
  EXPECT_NE(s.find("main stage 2"), std::string::npos);
  // Blocks: 1 + 2 + 4 NB headers.
  EXPECT_EQ(count_occurrences(s, "-- NB("), 7U);
  EXPECT_NE(s.find("self-routed"), std::string::npos);
}

TEST(TraceRender, MarksTheSortedBit) {
  const BnbNetwork net(2);
  const std::string s = render_trace(net, Permutation({2, 0, 3, 1}));
  // Stage 0 marks the MSB: address 2 = 10 renders as [1]0.
  EXPECT_NE(s.find("[1]0"), std::string::npos);
  EXPECT_NE(s.find("[0]0"), std::string::npos);
}

TEST(TraceRender, PayloadOption) {
  const BnbNetwork net(2);
  TraceRenderOptions opt;
  opt.show_payloads = true;
  const std::string s = render_trace(net, Permutation({1, 0, 3, 2}), opt);
  EXPECT_NE(s.find("payload"), std::string::npos);
}

TEST(TraceRender, RefusesOversizedNetworks) {
  const BnbNetwork net(7);  // 128 > default max_lines of 64
  Rng rng(191);
  EXPECT_THROW((void)render_trace(net, random_perm(128, rng)), contract_violation);
}

TEST(DotExport, GbnHasOneNodePerBoxAndEdgePerLine) {
  const GbnTopology g(3);
  const std::string dot = gbn_to_dot(g);
  // Boxes: 1 + 2 + 4 = 7 nodes.
  EXPECT_EQ(count_occurrences(dot, "[label=\"SB("), 7U);
  // Edges: 2 connections x 8 lines = 16.
  EXPECT_EQ(count_occurrences(dot, " -> "), 16U);
  EXPECT_EQ(dot.rfind("}\n"), dot.size() - 2);
}

TEST(DotExport, SplitterTreeShape) {
  const std::string dot = splitter_to_dot(3);
  EXPECT_EQ(count_occurrences(dot, "[label=\"FN\"]"), 7U);   // A(3) nodes
  EXPECT_EQ(count_occurrences(dot, "label=\"z_u\""), 6U);    // up edges
  EXPECT_EQ(count_occurrences(dot, "label=\"flag\""), 4U);   // leaf -> switch
  EXPECT_EQ(count_occurrences(dot, "sw(1) #"), 4U);
}

TEST(DotExport, SplitterP1IsJustASwitch) {
  const std::string dot = splitter_to_dot(1);
  EXPECT_EQ(count_occurrences(dot, "FN"), 0U);
  EXPECT_EQ(count_occurrences(dot, "sw(1) #"), 1U);
}

TEST(DotExport, BnbProfileNodesMatchNesting) {
  const std::string dot = bnb_profile_to_dot(3);
  EXPECT_EQ(count_occurrences(dot, "NB("), 7U);  // 1 + 2 + 4
  // Full per-line edges at small N: 2 connections x 8 lines.
  EXPECT_EQ(count_occurrences(dot, " -> "), 16U);
}

TEST(DotExport, LargeProfileSummarizes) {
  const std::string dot = bnb_profile_to_dot(8);  // 256 lines -> summarized
  EXPECT_NE(dot.find("lines\""), std::string::npos);
}

}  // namespace
}  // namespace bnb
