// Edge cases and cross-module invariants not covered by the per-module
// suites: minimal sizes, API contracts, and equalities between independent
// implementations.
#include <gtest/gtest.h>

#include "baselines/benes.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/activity.hpp"
#include "core/bnb_netlist.hpp"
#include "core/bnb_network.hpp"
#include "core/complexity.hpp"
#include "core/element_sim.hpp"
#include "fabric/staged_router.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(EdgeCases, SmallestNetworkEverywhere) {
  // m = 1 (N = 2): one sp(1), pure wiring logic.
  const Permutation swap12({1, 0});
  EXPECT_TRUE(BnbNetwork(1).route(swap12).self_routed);
  EXPECT_TRUE(BnbElementSim(1).route(swap12).self_routed);
  EXPECT_EQ(BnbNetlist(1, 0).census().switches_2x2, 1U);
  EXPECT_EQ(BnbNetlist(1, 0).census().function_nodes, 0U);
  const auto path = BnbNetlist(1, 0).critical_path(1.0, 1.0);
  EXPECT_DOUBLE_EQ(path.delay, 1.0);  // one switch, no arbiters
}

TEST(EdgeCases, NestedOfIdentifiesBlocks) {
  const BnbNetwork net(4);
  EXPECT_EQ(net.nested_of(0, 13).box, 0U);
  EXPECT_EQ(net.nested_of(1, 13).box, 1U);   // blocks of 8
  EXPECT_EQ(net.nested_of(2, 13).box, 3U);   // blocks of 4
  EXPECT_EQ(net.nested_of(3, 13).box, 6U);   // blocks of 2
  EXPECT_EQ(net.nested_of(3, 13).offset, 1U);
}

TEST(EdgeCases, WaksmanSetupOpsComparableToPlain) {
  // The optimization changes the cycle start order, which reshapes the
  // sub-permutations at deeper recursion levels — op counts differ a
  // little, but the work is the same order.
  Rng rng(991);
  const Permutation pi = random_perm(256, rng);
  const auto plain = BenesNetwork(8, false).set_up(pi).setup_ops;
  const auto waksman = BenesNetwork(8, true).set_up(pi).setup_ops;
  EXPECT_GT(waksman, plain * 9 / 10);
  EXPECT_LT(waksman, plain * 11 / 10);
}

TEST(EdgeCases, ElementSimFaultsInDeepStages) {
  // Faults in later main stages and inner nested stages are honored too.
  const BnbElementSim sim(4);
  Rng rng(992);
  Fault f;
  f.site.kind = FaultSite::Kind::kSwitchControl;
  f.site.main_stage = 2;   // NB blocks of 4
  f.site.nested_stage = 1; // its sp(1) column
  f.site.box = 5;
  f.site.index = 0;
  f.stuck_value = true;
  bool any_misroute = false;
  for (int round = 0; round < 60; ++round) {
    const Permutation pi = random_perm(16, rng);
    if (!sim.route_with_faults(pi, std::span<const Fault>(&f, 1)).self_routed) {
      any_misroute = true;
      break;
    }
  }
  EXPECT_TRUE(any_misroute);
}

TEST(EdgeCases, ActivityIdentityVsReversalSymmetry) {
  // Reversal complements every address bit of identity, so each splitter
  // sees complemented inputs; exchange counts may differ, but the fabric
  // size and stage structure are identical.
  const auto id = measure_activity(5, identity_perm(32));
  const auto rev = measure_activity(5, reversal_perm(32));
  EXPECT_EQ(id.switches_per_pass, rev.switches_per_pass);
  EXPECT_EQ(id.exchanges_per_main_stage.size(), rev.exchanges_per_main_stage.size());
}

TEST(EdgeCases, StagedRouterRejectsOverstepping) {
  const StagedBnbRouter router(2);
  std::vector<Word> words(4);
  for (std::size_t j = 0; j < 4; ++j) words[j] = Word{static_cast<std::uint32_t>(j), 0};
  auto job = router.start(words);
  while (!router.finished(job)) router.step(job);
  EXPECT_THROW(router.step(job), contract_violation);
}

TEST(EdgeCases, RouteWordsToleratesArbitraryPayloadBits) {
  // The behavioral model carries 64-bit payloads regardless of m.
  const BnbNetwork net(2);
  std::vector<Word> words(4);
  const Permutation pi({2, 3, 0, 1});
  for (std::size_t j = 0; j < 4; ++j) words[j] = Word{pi(j), ~std::uint64_t{0} - j};
  const auto r = net.route_words(words);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t line = 0; line < 4; ++line) {
    EXPECT_EQ(r.outputs[line].payload, ~std::uint64_t{0} - pi.inverse()(line));
  }
}

TEST(EdgeCases, ComplexityModelsRejectTinyOrHugeInput) {
  EXPECT_THROW((void)model::bnb_cost_exact(1, 0), contract_violation);
  EXPECT_THROW((void)model::bnb_delay(3), contract_violation);
  EXPECT_THROW((void)model::batcher_delay(6), contract_violation);
}

TEST(EdgeCases, TraceKeepsFirstStageEqualToInputs) {
  Rng rng(993);
  const BnbNetwork net(5);
  const Permutation pi = random_perm(32, rng);
  const auto r = net.route(pi, true);
  ASSERT_EQ(r.stage_words.size(), 5U);
  for (std::size_t j = 0; j < 32; ++j) {
    EXPECT_EQ(r.stage_words[0][j].address, pi(j));
  }
}

}  // namespace
}  // namespace bnb
