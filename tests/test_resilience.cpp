// Resilience layer correctness: the HealthTracker's breaker state machine
// (trip after K consecutive diagnoses, half-open probe cadence, recovery
// after consecutive clean probes), the ResilientRouter's retry ladder
// (deterministic exponential backoff under a per-route deadline budget),
// the audited cache fast path, and the quarantine contract — a schedule
// solved while faults are active never enters the ScheduleCache, and a
// poisoned cached digest is invalidated the moment its replay fails audit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/compiled_bnb.hpp"
#include "core/schedule_cache.hpp"
#include "fault/fault_model.hpp"
#include "fault/resilience.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;

void expect_delivers(const Permutation& pi, const ResilientReport& report) {
  ASSERT_TRUE(report.delivered()) << to_string(report.outcome);
  ASSERT_EQ(report.dest.size(), pi.size());
  for (std::size_t j = 0; j < pi.size(); ++j) {
    ASSERT_EQ(report.dest[j], pi(j)) << "dest[" << j << "]";
  }
}

/// A link flip into the first splitter's slice: fires on essentially every
/// permutation, so a handful of routes is enough to trip any breaker.
FaultModel always_firing_fault(unsigned m) {
  FaultModel model(m);
  model.add({FaultKind::kLinkFlip, {0, 0, 0, 0}, false, 0, 0});
  return model;
}

// ---- HealthTracker state machine ---------------------------------------

TEST(HealthTracker, TripsAfterConsecutiveFaultsOnly) {
  HealthTracker health({.trip_threshold = 2, .probe_interval = 3,
                        .recovery_threshold = 2});
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.gate(), HealthTracker::RouteGate::kPrimary);

  // A success between faults resets the consecutive streak.
  health.record_fault();
  health.record_ok();
  health.record_fault();
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.stats().trips, 0U);

  // Two in a row trip it.
  health.record_fault();
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_EQ(health.stats().trips, 1U);
}

TEST(HealthTracker, ProbeCadenceAndRecovery) {
  HealthTracker health({.trip_threshold = 1, .probe_interval = 3,
                        .recovery_threshold = 2});
  health.record_fault();
  ASSERT_EQ(health.state(), BreakerState::kOpen);

  // While open, every third gate is the half-open probe.
  EXPECT_EQ(health.gate(), HealthTracker::RouteGate::kDegraded);
  EXPECT_EQ(health.gate(), HealthTracker::RouteGate::kDegraded);
  EXPECT_EQ(health.gate(), HealthTracker::RouteGate::kProbe);
  EXPECT_EQ(health.stats().probes, 1U);

  // One clean probe: half-open, not yet closed.
  health.record_ok();
  EXPECT_EQ(health.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(health.stats().recoveries, 0U);

  // A failed probe ends the streak; the breaker stays fully open.
  health.record_fault();
  EXPECT_EQ(health.state(), BreakerState::kOpen);

  // Two consecutive clean probes close it.
  health.record_ok();
  health.record_ok();
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.stats().recoveries, 1U);
  EXPECT_EQ(health.gate(), HealthTracker::RouteGate::kPrimary);
}

// ---- clean fabric -------------------------------------------------------

TEST(ResilientRouter, CleanFabricDeliversFirstAttempt) {
  ResilientRouter router(5);
  Rng rng(0x2E51);
  for (int round = 0; round < 8; ++round) {
    const Permutation pi = random_perm(32, rng);
    const ResilientReport report = router.route(pi);
    EXPECT_EQ(report.outcome, ResilientOutcome::kDelivered);
    EXPECT_EQ(report.attempts, 1U);
    EXPECT_EQ(report.breaker, BreakerState::kClosed);
    EXPECT_FALSE(report.served_from_cache);
    expect_delivers(pi, report);
  }
}

TEST(ResilientRouter, CleanFabricFastPathServesFromCacheAndAudits) {
  // Small lane (m = 5) and general lane (m = 7): the second identical
  // route must be an audited cached replay, bit-correct either way.
  for (const unsigned m : {5U, 7U}) {
    ScheduleCache cache(16);
    ResilientRouter router(m, {}, &cache);
    Rng rng(0x2E52 + m);
    const Permutation pi = random_perm(std::size_t{1} << m, rng);

    const ResilientReport cold = router.route(pi);
    EXPECT_EQ(cold.outcome, ResilientOutcome::kDelivered) << "m=" << m;
    EXPECT_FALSE(cold.served_from_cache) << "m=" << m;
    expect_delivers(pi, cold);
    EXPECT_EQ(cache.stats().entries, 1U) << "m=" << m;

    const ResilientReport warm = router.route(pi);
    EXPECT_EQ(warm.outcome, ResilientOutcome::kDelivered) << "m=" << m;
    EXPECT_TRUE(warm.served_from_cache) << "m=" << m;
    EXPECT_TRUE(warm.audit.ok) << "a cached replay must still be audited";
    expect_delivers(pi, warm);
    EXPECT_EQ(router.stats().cache_served, 1U) << "m=" << m;
  }
}

// ---- retry ladder -------------------------------------------------------

TEST(ResilientRouter, TransientGlitchHealsWithBackoff) {
  // One-attempt glitch windows: the retry runs on healed hardware, so the
  // ladder must always end delivered — and when the glitch actually fired,
  // the heal shows up as kDeliveredAfterRetry with a counted backoff.
  const unsigned m = 5;
  Rng rng(0x2E53);
  std::uint64_t healed = 0;
  ResilientPolicy policy;
  policy.max_retries = 2;
  policy.sleep_on_backoff = false;  // deterministic: account, don't sleep
  for (int round = 0; round < 40; ++round) {
    ResilientRouter router(m, policy);
    Rng campaign_rng(0x2E53000 + round);
    FaultModel model(m);
    for (const auto& f : FaultModel::random_campaign(m, 2, campaign_rng)) {
      model.add(f);
    }
    router.inject_transient(model, 1);
    const Permutation pi = random_perm(32, rng);
    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    if (report.outcome == ResilientOutcome::kDeliveredAfterRetry) {
      ++healed;
      EXPECT_GE(report.backoffs, 1U);
      EXPECT_GT(report.backoff_ns, 0U);
      EXPECT_GE(router.stats().backoffs, 1U);
    }
  }
  EXPECT_GT(healed, 0U) << "40 random 2-fault glitches: some must fire";
}

TEST(ResilientRouter, BackoffScheduleIsDeterministicExponential) {
  ResilientPolicy policy;
  policy.max_retries = 4;
  policy.backoff_initial_ns = 1000;
  policy.backoff_max_ns = 3000;
  policy.sleep_on_backoff = false;
  const unsigned m = 4;
  ResilientRouter router(m, policy);
  router.inject(always_firing_fault(m));
  Rng rng(0x2E54);
  // A rare permutation may route despite the flip; find one that exhausts
  // the ladder and check the full schedule on it.
  bool exhausted = false;
  for (int round = 0; round < 16 && !exhausted; ++round) {
    const ResilientReport report = router.route(random_perm(16, rng));
    if (report.outcome != ResilientOutcome::kDeliveredByFallback) continue;
    exhausted = true;
    // 5 attempts -> 4 backoffs of 1000, 2000, then capped at 3000.
    ASSERT_EQ(report.attempts, 5U);
    EXPECT_EQ(report.backoffs, 4U);
    EXPECT_EQ(report.backoff_ns, 1000U + 2000U + 3000U + 3000U);
  }
  EXPECT_TRUE(exhausted);
}

TEST(ResilientRouter, DeadlineBudgetBoundsRetries) {
  // A 1 ns budget: the first backoff already exceeds it, so the ladder is
  // cut to a single attempt and the route falls through to the audited
  // spare plane instead of blocking.
  ResilientPolicy policy;
  policy.max_retries = 8;
  policy.backoff_initial_ns = 5'000'000;
  policy.deadline_ns = 1;
  policy.sleep_on_backoff = false;
  const unsigned m = 5;
  ResilientRouter router(m, policy);
  router.inject(always_firing_fault(m));
  Rng rng(0x2E55);
  std::uint64_t cut_short = 0;
  for (int round = 0; round < 6; ++round) {
    const Permutation pi = random_perm(32, rng);
    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    if (report.deadline_exceeded) {
      ++cut_short;
      EXPECT_EQ(report.attempts, 1U);
      EXPECT_EQ(report.backoffs, 0U);
      EXPECT_EQ(report.outcome, ResilientOutcome::kDeliveredByFallback);
    }
  }
  EXPECT_GT(cut_short, 0U);
  EXPECT_EQ(router.stats().deadline_exceeded, cut_short);
}

// ---- breaker integration ------------------------------------------------

TEST(ResilientRouter, PersistentFaultTripsBreakerAfterKDiagnoses) {
  ResilientPolicy policy;
  policy.max_retries = 1;
  policy.sleep_on_backoff = false;
  policy.breaker.trip_threshold = 3;
  const unsigned m = 6;
  ResilientRouter router(m, policy);
  router.inject(always_firing_fault(m));
  Rng rng(0x2E56);

  // Every persistently-failing route is diagnosed, delivered by fallback,
  // and feeds the breaker; after 3 consecutive diagnoses it must be open.
  std::uint64_t fallbacks = 0;
  for (int round = 0; round < 64 && router.health().stats().trips == 0; ++round) {
    const Permutation pi = random_perm(64, rng);
    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    if (report.outcome == ResilientOutcome::kDeliveredByFallback) {
      ++fallbacks;
      EXPECT_TRUE(report.diagnosis.located);
    }
  }
  ASSERT_EQ(router.health().stats().trips, 1U);
  EXPECT_GE(fallbacks, policy.breaker.trip_threshold);

  // Open breaker: non-probe routes go straight to the spare plane with no
  // primary attempts — bounded latency while the fabric is broken.
  std::uint64_t degraded = 0;
  for (int round = 0; round < 8; ++round) {
    const Permutation pi = random_perm(64, rng);
    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    if (report.outcome == ResilientOutcome::kDegraded) {
      ++degraded;
      EXPECT_EQ(report.attempts, 0U);
      EXPECT_NE(report.breaker, BreakerState::kClosed);
    }
  }
  EXPECT_GT(degraded, 0U);
  EXPECT_EQ(router.stats().degraded, degraded);
}

TEST(ResilientRouter, HalfOpenProbeRestoresFastPath) {
  ResilientPolicy policy;
  policy.max_retries = 0;
  policy.sleep_on_backoff = false;
  policy.breaker.trip_threshold = 2;
  policy.breaker.probe_interval = 2;
  policy.breaker.recovery_threshold = 2;
  const unsigned m = 5;
  ResilientRouter router(m, policy);
  Rng rng(0x2E57);

  router.inject(always_firing_fault(m));
  for (int round = 0; round < 64 && router.health().state() != BreakerState::kOpen;
       ++round) {
    (void)router.route(random_perm(32, rng));
  }
  ASSERT_EQ(router.health().state(), BreakerState::kOpen);

  // Repair the fabric: the half-open probes now come back clean, and after
  // recovery_threshold of them the breaker closes again.
  router.clear_faults();
  std::uint64_t probes_seen = 0;
  for (int round = 0; round < 64 && router.health().state() != BreakerState::kClosed;
       ++round) {
    const Permutation pi = random_perm(32, rng);
    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    if (report.probe) {
      ++probes_seen;
      EXPECT_EQ(report.outcome, ResilientOutcome::kDelivered);
      EXPECT_EQ(report.attempts, 1U) << "a probe gets exactly one attempt";
    }
  }
  EXPECT_EQ(router.health().state(), BreakerState::kClosed);
  EXPECT_EQ(probes_seen, policy.breaker.recovery_threshold);
  EXPECT_EQ(router.health().stats().recoveries, 1U);

  // Fast path restored: the next route is a plain first-attempt delivery.
  const Permutation pi = random_perm(32, rng);
  const ResilientReport report = router.route(pi);
  EXPECT_EQ(report.outcome, ResilientOutcome::kDelivered);
  EXPECT_FALSE(report.probe);
}

// ---- cache quarantine ---------------------------------------------------

TEST(ResilientRouter, FaultRoutesNeverPolluteCache) {
  // While any overlay is active — including an expired transient window
  // before clear_faults() — the cache must be neither consulted nor
  // populated.  Small lane (m = 5) and general lane (m = 7).
  for (const unsigned m : {5U, 7U}) {
    ScheduleCache cache(32);
    ResilientPolicy policy;
    policy.sleep_on_backoff = false;
    // Keep the breaker out of this test: a trip would gate the later clean
    // routes away from the fast path (quarantine is what's under test).
    policy.breaker.trip_threshold = 1000;
    ResilientRouter router(m, policy, &cache);
    Rng rng(0x2E58 + m);

    router.inject(always_firing_fault(m));
    for (int round = 0; round < 6; ++round) {
      const Permutation pi = random_perm(std::size_t{1} << m, rng);
      const ResilientReport report = router.route(pi);
      expect_delivers(pi, report);
      EXPECT_FALSE(report.served_from_cache) << "m=" << m;
    }
    EXPECT_EQ(cache.stats().entries, 0U)
        << "m=" << m << ": fault-era schedules must never enter the cache";

    // A transient overlay that already expired is still suspect.
    router.clear_faults();
    router.inject_transient(always_firing_fault(m), 1);
    const Permutation heal = random_perm(std::size_t{1} << m, rng);
    expect_delivers(heal, router.route(heal));  // retry outlives the glitch
    EXPECT_EQ(cache.stats().entries, 0U)
        << "m=" << m << ": suspect fabric (pre-clear_faults) must not cache";

    // Only after clear_faults() does the fast path repopulate.
    router.clear_faults();
    const Permutation clean = random_perm(std::size_t{1} << m, rng);
    expect_delivers(clean, router.route(clean));
    EXPECT_EQ(cache.stats().entries, 1U) << "m=" << m;
  }
}

TEST(ResilientRouter, QuarantineInvalidatesPoisonedDigest) {
  // Poison the cache: another permutation's schedule filed under pi's
  // digest.  The replay misroutes, the audit catches it, the digest is
  // quarantined, and the retry ladder still delivers pi correctly.
  for (const unsigned m : {5U, 7U}) {
    const std::size_t n = std::size_t{1} << m;
    ScheduleCache cache(16);
    ResilientRouter router(m, {}, &cache);
    Rng rng(0x2E59 + m);
    const Permutation pi = random_perm(n, rng);
    Permutation other = random_perm(n, rng);
    while (other == pi) other = random_perm(n, rng);

    const CompiledBnb& plan = router.engine();
    RouteScratch scratch;
    scratch.prepare(plan);
    const PermutationDigest digest = digest_permutation(pi);
    if (plan.small_capable()) {
      cache.insert_small(digest, plan.compile_small(other, scratch));
    } else {
      ControlSchedule poisoned;
      plan.solve(other, scratch, poisoned);
      cache.insert(digest, poisoned);
    }
    ASSERT_EQ(cache.stats().entries, 1U);

    const ResilientReport report = router.route(pi);
    expect_delivers(pi, report);
    EXPECT_FALSE(report.served_from_cache) << "m=" << m;
    EXPECT_EQ(cache.stats().quarantined, 1U)
        << "m=" << m << ": the poisoned digest must be invalidated";
    EXPECT_GE(report.attempts, 2U)
        << "m=" << m << ": failed replay, then a real primary attempt";

    // The digest is gone (the delivering ladder attempt bypasses the
    // cache): the next route is a clean miss-fill, and only THEN does a
    // replay serve — now with the correct schedule.
    const ResilientReport refill = router.route(pi);
    expect_delivers(pi, refill);
    EXPECT_FALSE(refill.served_from_cache) << "m=" << m;
    const ResilientReport warm = router.route(pi);
    expect_delivers(pi, warm);
    EXPECT_TRUE(warm.served_from_cache) << "m=" << m;
  }
}

TEST(ResilientRouter, DiagnosisQuarantinesTheFailingDigest) {
  // A digest cached while healthy must be dropped when the same
  // permutation later fails persistently: the schedule may predate the
  // damage, but quarantine is deliberately conservative.
  const unsigned m = 5;
  ScheduleCache cache(16);
  ResilientPolicy policy;
  policy.max_retries = 0;
  policy.sleep_on_backoff = false;
  ResilientRouter router(m, policy, &cache);
  Rng rng(0x2E5A);
  const Permutation pi = random_perm(32, rng);

  expect_delivers(pi, router.route(pi));
  ASSERT_EQ(cache.stats().entries, 1U);

  router.inject(always_firing_fault(m));
  const ResilientReport report = router.route(pi);
  expect_delivers(pi, report);
  EXPECT_EQ(report.outcome, ResilientOutcome::kDeliveredByFallback);
  EXPECT_EQ(cache.stats().entries, 0U);
  EXPECT_EQ(cache.stats().quarantined, 1U);
}

}  // namespace
