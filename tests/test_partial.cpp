// Partial permutations: completion and routing with idle inputs.
#include "perm/partial.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Partial, ValidationAcceptsAndRejects) {
  PartialMapping ok(4);
  ok[0] = 2;
  ok[3] = 0;
  EXPECT_TRUE(is_valid_partial(ok));

  PartialMapping dup(4);
  dup[0] = 1;
  dup[2] = 1;
  EXPECT_FALSE(is_valid_partial(dup));

  PartialMapping range(4);
  range[1] = 4;
  EXPECT_FALSE(is_valid_partial(range));
}

TEST(Partial, CompletionIsBijectiveAndHonorsRequests) {
  PartialMapping req(8);
  req[1] = 6;
  req[4] = 0;
  req[7] = 3;
  const auto done = complete_partial(req);
  EXPECT_EQ(done.full.size(), 8U);
  EXPECT_EQ(done.full(1), 6U);
  EXPECT_EQ(done.full(4), 0U);
  EXPECT_EQ(done.full(7), 3U);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(done.is_dummy[j], !req[j].has_value());
  }
}

TEST(Partial, EmptyMappingBecomesIdentityFill) {
  const auto done = complete_partial(PartialMapping(4));
  EXPECT_TRUE(done.full.is_identity());
  for (const bool d : done.is_dummy) EXPECT_TRUE(d);
}

TEST(Partial, FullMappingHasNoDummies) {
  PartialMapping req(4);
  for (std::size_t j = 0; j < 4; ++j) req[j] = static_cast<std::uint32_t>(3 - j);
  const auto done = complete_partial(req);
  for (const bool d : done.is_dummy) EXPECT_FALSE(d);
}

TEST(Partial, InvalidMappingThrows) {
  PartialMapping bad(3);
  bad[0] = 5;
  EXPECT_THROW((void)complete_partial(bad), contract_violation);
}

TEST(Partial, FromInts) {
  const std::int64_t raw[] = {-1, 2, -1, 0};
  const auto req = partial_from_ints(raw);
  EXPECT_FALSE(req[0].has_value());
  EXPECT_EQ(*req[1], 2U);
  EXPECT_FALSE(req[2].has_value());
  EXPECT_EQ(*req[3], 0U);
}

TEST(Partial, RoutesThroughBnbWithIdleInputs) {
  Rng rng(141);
  const unsigned m = 6;
  const std::size_t n = 64;
  const BnbNetwork net(m);

  for (int round = 0; round < 20; ++round) {
    // Random partial mapping: each input active with probability ~1/2.
    const Permutation base = random_perm(n, rng);
    PartialMapping req(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.flip()) req[j] = base(j);
    }
    const auto done = complete_partial(req);

    std::vector<Word> words(n);
    for (std::size_t j = 0; j < n; ++j) {
      // Dummies carry a sentinel payload to prove they are discardable.
      words[j] = Word{done.full(j), done.is_dummy[j] ? ~std::uint64_t{0} : j};
    }
    const auto r = net.route_words(words);
    ASSERT_TRUE(r.self_routed);

    // Every ACTIVE request was delivered to its asked-for output with its
    // own payload; dummy deliveries land only on unrequested outputs.
    for (std::size_t j = 0; j < n; ++j) {
      if (!req[j].has_value()) continue;
      const auto& delivered = r.outputs[*req[j]];
      EXPECT_EQ(delivered.payload, j);
    }
  }
}

TEST(Partial, SingleActiveInput) {
  const BnbNetwork net(4);
  PartialMapping req(16);
  req[5] = 11;
  const auto done = complete_partial(req);
  std::vector<Word> words(16);
  for (std::size_t j = 0; j < 16; ++j) words[j] = Word{done.full(j), j};
  const auto r = net.route_words(words);
  ASSERT_TRUE(r.self_routed);
  EXPECT_EQ(r.outputs[11].payload, 5U);
}

}  // namespace
}  // namespace bnb
