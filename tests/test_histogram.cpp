#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace bnb {
namespace {

TEST(Histogram, BasicStats) {
  Histogram h;
  for (const std::uint64_t v : {5ULL, 1ULL, 3ULL, 9ULL, 2ULL}) h.add(v);
  EXPECT_EQ(h.count(), 5U);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.min(), 1U);
  EXPECT_EQ(h.max(), 9U);
}

TEST(Histogram, EmptyStatsThrow) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW((void)h.mean(), contract_violation);
  EXPECT_THROW((void)h.min(), contract_violation);
  EXPECT_THROW((void)h.percentile(50), contract_violation);
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(1), 1U);
  EXPECT_EQ(h.percentile(50), 50U);
  EXPECT_EQ(h.percentile(99), 99U);
  EXPECT_EQ(h.percentile(100), 100U);
  EXPECT_THROW((void)h.percentile(0), contract_violation);
  EXPECT_THROW((void)h.percentile(101), contract_violation);
}

TEST(Histogram, PercentileMatchesSortedVectorOnRandomData) {
  Rng rng(61);
  Histogram h;
  std::vector<std::uint64_t> raw;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10000);
    h.add(v);
    raw.push_back(v);
  }
  std::sort(raw.begin(), raw.end());
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const std::size_t rank =
        static_cast<std::size_t>(p / 100.0 * 1000.0 + 0.999999);
    EXPECT_EQ(h.percentile(p), raw[rank - 1]) << p;
  }
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(42);
  EXPECT_EQ(h.percentile(1), 42U);
  EXPECT_EQ(h.percentile(100), 42U);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, Merge) {
  Histogram a;
  Histogram b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_EQ(a.max(), 4U);
}

TEST(Histogram, RenderShowsBuckets) {
  Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(100);
  const std::string s = h.render();
  EXPECT_NE(s.find("[0, 0]: 1"), std::string::npos);
  EXPECT_NE(s.find("[1, 1]: 1"), std::string::npos);
  EXPECT_NE(s.find("[2, 3]: 2"), std::string::npos);
  EXPECT_NE(s.find("[64, 127]: 1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Histogram, RenderEmpty) {
  const Histogram h;
  EXPECT_EQ(h.render(), "(empty)\n");
}

}  // namespace
}  // namespace bnb
