// Switch-activity analysis.
#include "core/activity.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

std::uint64_t total_switches(unsigned m) {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < m; ++i) total += (pow2(m) / 2) * (m - i);
  return total;
}

TEST(Activity, SettingsVectorHasOneEntryPerSwitch) {
  for (const unsigned m : {2U, 4U, 6U}) {
    const auto settings = bnb_switch_settings(m, identity_perm(pow2(m)));
    EXPECT_EQ(settings.size(), total_switches(m));
  }
}

TEST(Activity, SettingsAreDeterministic) {
  Rng rng(171);
  const Permutation pi = random_perm(64, rng);
  EXPECT_EQ(bnb_switch_settings(6, pi), bnb_switch_settings(6, pi));
}

TEST(Activity, ExchangeCountsMatchSettingsSum) {
  Rng rng(172);
  const Permutation pi = random_perm(64, rng);
  const auto stats = measure_activity(6, pi);
  const auto settings = bnb_switch_settings(6, pi);
  std::uint64_t ones = 0;
  for (const auto s : settings) ones += s;
  EXPECT_EQ(stats.exchanges, ones);
  EXPECT_EQ(stats.switches_per_pass, settings.size());

  std::uint64_t per_stage_sum = 0;
  for (const auto e : stats.exchanges_per_main_stage) per_stage_sum += e;
  EXPECT_EQ(per_stage_sum, stats.exchanges);
}

TEST(Activity, RandomTrafficExchangesRoughlyHalf) {
  // Arbiter controls are near-fair under uniform traffic.
  Rng rng(173);
  std::vector<Permutation> stream;
  for (int i = 0; i < 50; ++i) stream.push_back(random_perm(256, rng));
  const auto stats = measure_stream_activity(8, stream);
  const double rate = static_cast<double>(stats.exchanges) /
                      static_cast<double>(stats.switches_per_pass * 50);
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(Activity, TogglesZeroForRepeatedPermutation) {
  Rng rng(174);
  const Permutation pi = random_perm(32, rng);
  const std::vector<Permutation> stream{pi, pi, pi};
  const auto stats = measure_stream_activity(5, stream);
  EXPECT_EQ(stats.toggles, 0U);
}

TEST(Activity, TogglesBoundedBySwitchCountPerTransition) {
  Rng rng(175);
  std::vector<Permutation> stream{random_perm(32, rng), random_perm(32, rng)};
  const auto stats = measure_stream_activity(5, stream);
  EXPECT_LE(stats.toggles, stats.switches_per_pass);
  EXPECT_GT(stats.toggles, 0U);  // two random perms almost surely differ
}

TEST(Activity, StreamSumsEqualIndividualRuns) {
  Rng rng(176);
  std::vector<Permutation> stream;
  for (int i = 0; i < 5; ++i) stream.push_back(random_perm(16, rng));
  const auto whole = measure_stream_activity(4, stream);
  std::uint64_t sum = 0;
  for (const auto& pi : stream) sum += measure_activity(4, pi).exchanges;
  EXPECT_EQ(whole.exchanges, sum);
}

}  // namespace
}  // namespace bnb
