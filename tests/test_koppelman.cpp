// Koppelman/Oruc-style rank-and-route SRPN (reference [11], substituted —
// see DESIGN.md §2).
#include "baselines/koppelman.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/complexity.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Koppelman, ExhaustiveN4AndN8) {
  for (const unsigned m : {2U, 3U}) {
    const KoppelmanSrpn net(m);
    Permutation pi(net.inputs());
    do {
      ASSERT_TRUE(net.route(pi).self_routed) << pi.to_string();
    } while (pi.next_lexicographic());
  }
}

TEST(Koppelman, RandomLarge) {
  Rng rng(91);
  for (const unsigned m : {6U, 10U, 14U}) {
    const KoppelmanSrpn net(m);
    EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed);
  }
}

TEST(Koppelman, StructuredFamiliesAllRoute) {
  for (const auto f : all_perm_families()) {
    const KoppelmanSrpn net(5);
    EXPECT_TRUE(net.route(make_perm(f, 32, 3)).self_routed) << perm_family_name(f);
  }
}

TEST(Koppelman, PayloadsFollow) {
  Rng rng(92);
  const KoppelmanSrpn net(6);
  const Permutation pi = random_perm(64, rng);
  std::vector<Word> words(64);
  for (std::size_t j = 0; j < 64; ++j) words[j] = Word{pi(j), 500 + j};
  const auto r = net.route_words(words);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t line = 0; line < 64; ++line) {
    EXPECT_EQ(r.outputs[line].payload, 500 + pi.inverse()(line));
  }
}

TEST(Koppelman, AdderWorkMatchesScanStructure) {
  // Stage i: 2^i blocks of P = 2^{m-i} lines, each scanned with 2(P-1)
  // adds; depth adds 2 log P levels per stage.
  const unsigned m = 5;
  const KoppelmanSrpn net(m);
  const auto r = net.route(identity_perm(32));
  std::uint64_t want_ops = 0;
  std::uint64_t want_depth = 0;
  for (unsigned i = 0; i < m; ++i) {
    const std::uint64_t P = pow2(m - i);
    want_ops += (pow2(i)) * 2 * (P - 1);
    want_depth += 2 * (m - i);
  }
  EXPECT_EQ(r.adder_ops, want_ops);
  EXPECT_EQ(r.adder_depth, want_depth);
  EXPECT_EQ(want_depth, std::uint64_t{m} * (m + 1));  // closed form
}

TEST(Koppelman, GlobalRankingCostsMoreCoordinationThanBnbFlags) {
  // Ablation seed: the ranking tree's depth in *adder* levels exceeds the
  // BNB arbiter's function-node levels at the same stage only modestly, but
  // each adder level is a log P-bit add, not a 2-gate node — the basis of
  // the paper's D_FN-vs-adder comparison in Table 2.
  const KoppelmanSrpn net(8);
  const auto r = net.route(identity_perm(256));
  EXPECT_EQ(r.adder_depth, 8ULL * 9);
  EXPECT_GT(model::koppelman_delay_units(256),
            static_cast<std::uint64_t>(
                model::table2_delay(model::NetworkKind::kBnb, 256)));
}

TEST(Koppelman, CensusMatchesTable1Row) {
  const KoppelmanSrpn net(6);
  const auto c = net.census();
  EXPECT_EQ(c.switches_2x2, 64ULL / 4 * 216);
  EXPECT_EQ(c.function_nodes, 64ULL / 2 * 36);
  EXPECT_EQ(c.adder_nodes, 64ULL * 36);
}

TEST(Koppelman, NonPermutationRejected) {
  const KoppelmanSrpn net(2);
  std::vector<Word> words(4, Word{2, 0});
  EXPECT_THROW((void)net.route_words(words), contract_violation);
}

}  // namespace
}  // namespace bnb
