// Definition 4 / Theorem 1: the bit-sorter network.
#include "core/bit_sorter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/complexity.hpp"

namespace bnb {
namespace {

std::vector<std::uint8_t> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = static_cast<std::uint8_t>((v >> i) & 1U);
  return bits;
}

void expect_alternating(const std::vector<std::uint8_t>& out) {
  for (std::size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(out[j], static_cast<std::uint8_t>(j % 2))
        << "output " << j << " violates Theorem 1";
  }
}

TEST(BitSorter, Theorem1ExhaustiveK1toK4) {
  // Every balanced input (exactly half 1s) must come out 0,1,0,1,...
  for (const unsigned k : {1U, 2U, 3U, 4U}) {
    const BitSorter bsn(k);
    const std::size_t n = bsn.inputs();
    std::size_t tested = 0;
    for (std::uint64_t v = 0; v < pow2(static_cast<unsigned>(n)); ++v) {
      if (popcount64(v) != n / 2) continue;
      const auto r = bsn.route(bits_of(v, n));
      expect_alternating(r.out_bits);
      ++tested;
    }
    EXPECT_GT(tested, 0U);
  }
}

TEST(BitSorter, Theorem1RandomLarge) {
  Rng rng(41);
  for (const unsigned k : {5U, 8U, 10U, 12U, 14U}) {
    const BitSorter bsn(k);
    const std::size_t n = bsn.inputs();
    for (int round = 0; round < 10; ++round) {
      // Random balanced input: shuffle a half-and-half vector.
      std::vector<std::uint8_t> in(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<std::uint8_t>(i % 2);
      for (std::size_t i = n; i > 1; --i) {
        std::swap(in[i - 1], in[rng.below(i)]);
      }
      const auto r = bsn.route(in);
      expect_alternating(r.out_bits);
    }
  }
}

TEST(BitSorter, DestIsConsistentBijection) {
  Rng rng(43);
  const BitSorter bsn(6);
  const std::size_t n = bsn.inputs();
  std::vector<std::uint8_t> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<std::uint8_t>(i % 2);
  for (std::size_t i = n; i > 1; --i) std::swap(in[i - 1], in[rng.below(i)]);

  const auto r = bsn.route(in);
  std::vector<bool> hit(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(r.out_bits[r.dest[j]], in[j]);
    EXPECT_FALSE(hit[r.dest[j]]);
    hit[r.dest[j]] = true;
  }
}

TEST(BitSorter, ControlsHaveOnePerSwitchPerStage) {
  const BitSorter bsn(4);
  std::vector<std::uint8_t> in(16);
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<std::uint8_t>(i % 2);
  const auto r = bsn.route(in);
  ASSERT_EQ(r.controls.size(), 4U);
  for (const auto& stage : r.controls) {
    EXPECT_EQ(stage.size(), 8U);  // N/2 switches per stage
  }
  ASSERT_EQ(r.line_bits.size(), 4U);
  EXPECT_EQ(r.line_bits[0], in);
}

TEST(BitSorter, UnbalancedInputRejected) {
  const BitSorter bsn(3);
  std::vector<std::uint8_t> in(8, 0);
  in[0] = in[1] = 1;  // 2 ones of 8: not half
  EXPECT_THROW((void)bsn.route(in), contract_violation);
}

TEST(BitSorter, CensusMatchesStructure) {
  // 2^k-input BSN: stage-l has 2^l sp(k-l): switches sum to (N/2)*k and
  // function nodes follow Eq. 4's closed form.
  for (const unsigned k : {1U, 2U, 3U, 4U, 6U, 8U, 10U}) {
    const BitSorter bsn(k);
    const std::size_t n = bsn.inputs();
    const auto c = bsn.census();
    EXPECT_EQ(c.switches_2x2, (n / 2) * k);
    EXPECT_EQ(c.function_nodes, model::nested_arbiter_cost(n))
        << "k=" << k;
  }
}

TEST(BitSorter, StageZeroUsesOneBigSplitter) {
  // BSN(k): recursion halves splitter sizes; stage boundaries checked via
  // topology accessors.
  const BitSorter bsn(5);
  EXPECT_EQ(bsn.topology().boxes_in_stage(0), 1U);
  EXPECT_EQ(bsn.topology().box_size(0), 32U);
  EXPECT_EQ(bsn.topology().boxes_in_stage(4), 16U);
  EXPECT_EQ(bsn.topology().box_size(4), 2U);
}

}  // namespace
}  // namespace bnb
