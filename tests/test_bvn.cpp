// Demand matrices and Birkhoff–von Neumann scheduling over the BNB fabric.
#include "fabric/bvn.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "fabric/demand.hpp"

namespace bnb {
namespace {

TEST(Demand, SumsAndAccess) {
  DemandMatrix d(3);
  d.set(0, 1, 5);
  d.add(0, 1, 2);
  d.set(2, 0, 3);
  EXPECT_EQ(d.at(0, 1), 7U);
  EXPECT_EQ(d.row_sum(0), 7U);
  EXPECT_EQ(d.col_sum(1), 7U);
  EXPECT_EQ(d.col_sum(0), 3U);
  EXPECT_EQ(d.max_line_sum(), 7U);
  EXPECT_EQ(d.total(), 10U);
  EXPECT_THROW((void)d.at(3, 0), contract_violation);
}

TEST(Demand, PadToCapacityBalancesEverything) {
  Rng rng(211);
  DemandMatrix d = DemandMatrix::random(8, 40, rng);
  const std::uint64_t cap = d.max_line_sum() + 3;
  DemandMatrix original = d;
  const DemandMatrix filler = d.pad_to_capacity(cap);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(d.row_sum(k), cap);
    EXPECT_EQ(d.col_sum(k), cap);
  }
  // d = original + filler, entrywise.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(d.at(i, j), original.at(i, j) + filler.at(i, j));
    }
  }
}

TEST(Demand, PadBelowMaxLineSumRejected) {
  DemandMatrix d(2);
  d.set(0, 0, 4);
  EXPECT_THROW((void)d.pad_to_capacity(3), contract_violation);
}

TEST(Demand, RandomAdmissibleRespectsCapacity) {
  Rng rng(212);
  for (int round = 0; round < 10; ++round) {
    const DemandMatrix d = DemandMatrix::random_admissible(16, 12, 0.8, rng);
    EXPECT_LE(d.max_line_sum(), 12U);
  }
}

TEST(Bvn, DecomposesAPermutationMatrixInOneSlot) {
  DemandMatrix d(4);
  d.set(0, 2, 5);
  d.set(1, 0, 5);
  d.set(2, 3, 5);
  d.set(3, 1, 5);
  const auto dec = bvn_decompose(d);
  ASSERT_EQ(dec.slots.size(), 1U);
  EXPECT_EQ(dec.slots[0].weight, 5U);
  EXPECT_EQ(dec.slots[0].perm, Permutation({2, 0, 3, 1}));
  EXPECT_EQ(dec.capacity, 5U);
  EXPECT_TRUE(decomposition_reconstructs(dec, d));
}

TEST(Bvn, ReconstructsRandomBalancedMatrices) {
  Rng rng(213);
  for (const std::size_t n : {2UL, 4UL, 8UL, 16UL}) {
    DemandMatrix d = DemandMatrix::random(n, 5 * n, rng);
    (void)d.pad_to_capacity(d.max_line_sum());
    const DemandMatrix padded = d;
    const auto dec = bvn_decompose(padded);
    EXPECT_TRUE(decomposition_reconstructs(dec, padded)) << "n=" << n;
    // Birkhoff bound: at most n^2 - 2n + 2 slots.
    EXPECT_LE(dec.slots.size(), n * n - 2 * n + 2) << "n=" << n;
    std::uint64_t weight_sum = 0;
    for (const auto& s : dec.slots) weight_sum += s.weight;
    EXPECT_EQ(weight_sum, dec.capacity);
  }
}

TEST(Bvn, UnbalancedMatrixRejected) {
  DemandMatrix d(2);
  d.set(0, 0, 2);
  d.set(1, 1, 1);
  EXPECT_THROW((void)bvn_decompose(d), contract_violation);
}

TEST(Bvn, ZeroCapacityRejected) {
  EXPECT_THROW((void)bvn_decompose(DemandMatrix(4)), contract_violation);
}

TEST(Bvn, ScheduleDeliversEveryCellExactlyOnce) {
  Rng rng(214);
  for (const std::size_t n : {4UL, 8UL, 16UL}) {
    DemandMatrix real = DemandMatrix::random(n, 6 * n, rng);
    DemandMatrix padded = real;
    (void)padded.pad_to_capacity(padded.max_line_sum());
    const auto dec = bvn_decompose(padded);

    const auto result = run_bvn_schedule(dec, real);
    EXPECT_TRUE(result.demand_met) << "n=" << n;
    EXPECT_EQ(result.cells_delivered, real.total());
    EXPECT_EQ(result.cell_times, dec.capacity);
  }
}

TEST(Bvn, ScheduleHandlesSparseDemand) {
  // One single cell: the frame still pads out to a full permutation set.
  DemandMatrix real(8);
  real.set(3, 5, 1);
  DemandMatrix padded = real;
  (void)padded.pad_to_capacity(1);
  const auto dec = bvn_decompose(padded);
  const auto result = run_bvn_schedule(dec, real);
  EXPECT_TRUE(result.demand_met);
  EXPECT_EQ(result.cells_delivered, 1U);
  EXPECT_EQ(result.cell_times, 1U);
}

TEST(Bvn, ScheduleAdmissibleLoadSweep) {
  Rng rng(215);
  for (const double load : {0.25, 0.75, 1.0}) {
    DemandMatrix real = DemandMatrix::random_admissible(16, 8, load, rng);
    if (real.total() == 0) continue;
    DemandMatrix padded = real;
    (void)padded.pad_to_capacity(padded.max_line_sum());
    const auto dec = bvn_decompose(padded);
    const auto result = run_bvn_schedule(dec, real);
    EXPECT_TRUE(result.demand_met) << "load=" << load;
  }
}

}  // namespace
}  // namespace bnb
