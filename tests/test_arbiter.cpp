// Section 4: the tree arbiter A(p) and the flag algorithm.
#include "core/arbiter.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "sim/gates.hpp"

namespace bnb {
namespace {

std::vector<std::uint8_t> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = static_cast<std::uint8_t>((v >> i) & 1U);
  return bits;
}

TEST(Arbiter, NodeCountMatchesEq4Pieces) {
  EXPECT_EQ(Arbiter::node_count(1), 0U);   // A(1) is wiring
  EXPECT_EQ(Arbiter::node_count(2), 3U);
  EXPECT_EQ(Arbiter::node_count(3), 7U);
  EXPECT_EQ(Arbiter::node_count(4), 15U);
  EXPECT_EQ(Arbiter::node_count(10), 1023U);
}

TEST(Arbiter, DelayUnitsArePLevelsEachWay) {
  EXPECT_EQ(Arbiter::delay_fn_units(1), 0U);
  EXPECT_EQ(Arbiter::delay_fn_units(2), 4U);
  EXPECT_EQ(Arbiter::delay_fn_units(3), 6U);
  EXPECT_EQ(Arbiter::delay_fn_units(7), 14U);
}

TEST(Arbiter, A1IsWiring) {
  const Arbiter a(1);
  const std::vector<std::uint8_t> bits{1, 0};
  const auto flags = a.compute_flags(bits);
  EXPECT_EQ(flags, (std::vector<std::uint8_t>{0, 0}));
}

TEST(Arbiter, Type2PairsReceiveEqualZeroAndOneFlags) {
  // Theorem 3's pairing argument: with an even number of 1s, exactly half
  // of the type-2 pairs get flag 0 and half get flag 1.
  Rng rng(21);
  for (const unsigned p : {2U, 3U, 4U, 5U, 6U}) {
    const Arbiter a(p);
    const std::size_t n = a.inputs();
    for (int round = 0; round < 200; ++round) {
      // Random even-weight input.
      std::vector<std::uint8_t> bits(n);
      for (auto& b : bits) b = static_cast<std::uint8_t>(rng.flip());
      if (std::accumulate(bits.begin(), bits.end(), 0) % 2 != 0) bits[0] ^= 1;

      const auto flags = a.compute_flags(bits);
      std::size_t zero_flag_pairs = 0;
      std::size_t one_flag_pairs = 0;
      for (std::size_t t = 0; t < n / 2; ++t) {
        if (bits[2 * t] == bits[2 * t + 1]) continue;  // type-1
        // Type-2 pair: both inputs must carry the same flag (rule 3).
        ASSERT_EQ(flags[2 * t], flags[2 * t + 1]);
        (flags[2 * t] == 0 ? zero_flag_pairs : one_flag_pairs)++;
      }
      EXPECT_EQ(zero_flag_pairs, one_flag_pairs) << "p=" << p;
    }
  }
}

TEST(Arbiter, ExhaustiveEvenWeightP2P3) {
  for (const unsigned p : {2U, 3U}) {
    const Arbiter a(p);
    const std::size_t n = a.inputs();
    for (std::uint64_t v = 0; v < pow2(static_cast<unsigned>(n)); ++v) {
      if (popcount64(v) % 2 != 0) continue;
      const auto bits = bits_of(v, n);
      const auto flags = a.compute_flags(bits);
      std::size_t zero_pairs = 0;
      std::size_t one_pairs = 0;
      for (std::size_t t = 0; t < n / 2; ++t) {
        if (bits[2 * t] == bits[2 * t + 1]) continue;
        ASSERT_EQ(flags[2 * t], flags[2 * t + 1]);
        (flags[2 * t] == 0 ? zero_pairs : one_pairs)++;
      }
      EXPECT_EQ(zero_pairs, one_pairs) << "p=" << p << " v=" << v;
    }
  }
}

TEST(Arbiter, TraceUpSignalsAreSubtreeXors) {
  const Arbiter a(3);
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0, 0, 1, 0};
  Arbiter::Trace trace;
  (void)a.compute_flags(bits, &trace);
  ASSERT_EQ(trace.up.size(), 8U);
  // Leaves (heap 4..7) hold the pair XORs.
  EXPECT_EQ(trace.up[4], 1);  // 1^0
  EXPECT_EQ(trace.up[5], 0);  // 1^1
  EXPECT_EQ(trace.up[6], 0);  // 0^0
  EXPECT_EQ(trace.up[7], 1);  // 1^0
  // Internal nodes XOR their children.
  EXPECT_EQ(trace.up[2], trace.up[4] ^ trace.up[5]);
  EXPECT_EQ(trace.up[3], trace.up[6] ^ trace.up[7]);
  EXPECT_EQ(trace.up[1], trace.up[2] ^ trace.up[3]);
  // Even total weight => root XOR is 0, and it echoes down.
  EXPECT_EQ(trace.up[1], 0);
  EXPECT_EQ(trace.down[1], trace.up[1]);
}

TEST(Arbiter, GateLevelMatchesBehavioralExhaustively) {
  for (const unsigned p : {2U, 3U, 4U}) {
    const Arbiter a(p);
    const std::size_t n = a.inputs();

    sim::GateNetlist net;
    std::vector<sim::GateNetlist::GateId> input_ids(n);
    for (auto& id : input_ids) id = net.add_input();
    const auto flag_ids = a.build_gates(net, input_ids);
    ASSERT_EQ(flag_ids.size(), n);

    for (std::uint64_t v = 0; v < pow2(static_cast<unsigned>(n)); ++v) {
      const auto bits = bits_of(v, n);
      std::vector<bool> in(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = bits[i] != 0;
      const auto values = net.evaluate(in);
      const auto flags = a.compute_flags(bits);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(values[flag_ids[i]], flags[i] != 0)
            << "p=" << p << " v=" << v << " line=" << i;
      }
    }
  }
}

TEST(Arbiter, GateCountIsFourPerNode) {
  const Arbiter a(4);
  sim::GateNetlist net;
  std::vector<sim::GateNetlist::GateId> input_ids(16);
  for (auto& id : input_ids) id = net.add_input();
  (void)a.build_gates(net, input_ids);
  // 15 nodes x (XOR + AND + NOT + OR) = 60 logic gates.
  EXPECT_EQ(net.logic_gate_count(), 4 * Arbiter::node_count(4));
}

TEST(Arbiter, InputSizeChecked) {
  const Arbiter a(2);
  const std::vector<std::uint8_t> three{0, 1, 0};
  EXPECT_THROW((void)a.compute_flags(three), contract_violation);
  const std::vector<std::uint8_t> bad{0, 1, 2, 0};
  EXPECT_THROW((void)a.compute_flags(bad), contract_violation);
}

}  // namespace
}  // namespace bnb
