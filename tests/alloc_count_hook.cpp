#include "alloc_count_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

namespace bnb::testhook {

std::size_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void reset_allocation_count() noexcept {
  g_alloc_count.store(0, std::memory_order_relaxed);
}

}  // namespace bnb::testhook

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
