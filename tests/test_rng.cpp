#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bnb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 12345678ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0ULL);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8U);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U(0,1) ~ 0.5; generous tolerance for 10k samples.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.flip()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / 10000.0, 0.5, 0.03);
}

TEST(SplitMix, KnownGolden) {
  // SplitMix64(0) first output is the well-known constant.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace bnb
