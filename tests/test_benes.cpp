// Benes network + Waksman looping (references [5], [6]).
#include "baselines/benes.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Benes, StageCount) {
  EXPECT_EQ(BenesNetwork(1).stage_count(), 1U);
  EXPECT_EQ(BenesNetwork(3).stage_count(), 5U);
  EXPECT_EQ(BenesNetwork(10).stage_count(), 19U);
}

TEST(Benes, RoutesTrivialN2) {
  const BenesNetwork net(1);
  EXPECT_TRUE(net.route(Permutation({0, 1})).self_routed);
  EXPECT_TRUE(net.route(Permutation({1, 0})).self_routed);
}

TEST(Benes, ExhaustiveN4) {
  const BenesNetwork net(2);
  Permutation pi(4);
  do {
    ASSERT_TRUE(net.route(pi).self_routed) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(Benes, ExhaustiveN8) {
  const BenesNetwork net(3);
  Permutation pi(8);
  do {
    ASSERT_TRUE(net.route(pi).self_routed) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(Benes, RandomLarge) {
  Rng rng(71);
  for (const unsigned m : {5U, 8U, 12U, 14U}) {
    const BenesNetwork net(m);
    for (int round = 0; round < 5; ++round) {
      EXPECT_TRUE(net.route(random_perm(net.inputs(), rng)).self_routed) << "m=" << m;
    }
  }
}

TEST(Benes, StructuredFamiliesAllRoute) {
  for (const auto f : all_perm_families()) {
    const BenesNetwork net(6);
    EXPECT_TRUE(net.route(make_perm(f, 64, 5)).self_routed) << perm_family_name(f);
  }
}

TEST(Benes, SetupOpsGrowSuperlinearly) {
  // The looping algorithm is Theta(N log N) serial work: each of the m
  // recursion levels walks all N lines.
  Rng rng(72);
  const Permutation p1 = random_perm(1 << 8, rng);
  const Permutation p2 = random_perm(1 << 12, rng);
  const auto ops1 = BenesNetwork(8).set_up(p1).setup_ops;
  const auto ops2 = BenesNetwork(12).set_up(p2).setup_ops;
  // N doubled 4x and log grew 8->12: expect ops ratio > 16 (superlinear).
  EXPECT_GT(ops2, 16 * ops1);
  EXPECT_GE(ops1, (1ULL << 8) * 4);  // at least ~N*log(N)/2 loop steps
}

TEST(Benes, PlanIsReusableWithoutSetup) {
  Rng rng(73);
  const BenesNetwork net(6);
  const Permutation pi = random_perm(64, rng);
  const auto plan = net.set_up(pi);
  std::vector<Word> words(64);
  for (std::size_t j = 0; j < 64; ++j) words[j] = Word{pi(j), 7000 + j};
  const auto out = net.apply_plan(plan, words);
  for (std::size_t line = 0; line < 64; ++line) {
    EXPECT_EQ(out[line].address, line);
    EXPECT_EQ(out[line].payload, 7000 + pi.inverse()(line));
  }
}

TEST(Benes, SettingsShapeMatchesTopology) {
  const BenesNetwork net(4);
  const auto plan = net.set_up(Permutation(16));
  ASSERT_EQ(plan.settings.size(), 7U);
  for (const auto& stage : plan.settings) EXPECT_EQ(stage.size(), 8U);
}

TEST(Benes, CensusIsFarSmallerThanBnb) {
  // The paper's point: Benes hardware is tiny (O(N log N) switches); its
  // cost is the global set-up, not the fabric.
  const BenesNetwork net(10);
  const auto c = net.census(0);
  EXPECT_EQ(c.switches_2x2, 19ULL * 512 * 10);
  EXPECT_EQ(c.function_nodes, 0U);
}

}  // namespace
}  // namespace bnb
