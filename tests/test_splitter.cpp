// Definition 3 / Theorem 3 / Lemma 1: the splitter sp(p).
#include "core/splitter.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace bnb {
namespace {

std::vector<std::uint8_t> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = static_cast<std::uint8_t>((v >> i) & 1U);
  return bits;
}

std::size_t ones_even(const std::vector<std::uint8_t>& v) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < v.size(); i += 2) c += v[i];
  return c;
}
std::size_t ones_odd(const std::vector<std::uint8_t>& v) {
  std::size_t c = 0;
  for (std::size_t i = 1; i < v.size(); i += 2) c += v[i];
  return c;
}

TEST(Splitter, P1RoutesZeroUpOneDown) {
  const Splitter sp(1);
  {
    const std::vector<std::uint8_t> in{0, 1};
    const auto r = sp.route(in);
    EXPECT_EQ(r.out_bits, (std::vector<std::uint8_t>{0, 1}));
    EXPECT_EQ(r.controls[0], 0);  // straight
  }
  {
    const std::vector<std::uint8_t> in{1, 0};
    const auto r = sp.route(in);
    EXPECT_EQ(r.out_bits, (std::vector<std::uint8_t>{0, 1}));
    EXPECT_EQ(r.controls[0], 1);  // exchange
  }
}

TEST(Splitter, P1RejectsEqualInputs) {
  const Splitter sp(1);
  const std::vector<std::uint8_t> same{1, 1};
  EXPECT_THROW((void)sp.route(same), contract_violation);
}

TEST(Splitter, Theorem3ExhaustiveBalanceP2toP4) {
  // For every even-weight input, M_e(out) == M_o(out).
  for (const unsigned p : {2U, 3U, 4U}) {
    const Splitter sp(p);
    const std::size_t n = sp.inputs();
    for (std::uint64_t v = 0; v < pow2(static_cast<unsigned>(n)); ++v) {
      if (popcount64(v) % 2 != 0) continue;
      const auto in = bits_of(v, n);
      const auto r = sp.route(in);
      EXPECT_EQ(ones_even(r.out_bits), ones_odd(r.out_bits))
          << "p=" << p << " input=" << v;
    }
  }
}

TEST(Splitter, BalanceOnRandomLargeInputs) {
  Rng rng(31);
  for (const unsigned p : {5U, 6U, 8U, 10U}) {
    const Splitter sp(p);
    const std::size_t n = sp.inputs();
    for (int round = 0; round < 50; ++round) {
      std::vector<std::uint8_t> in(n);
      for (auto& b : in) b = static_cast<std::uint8_t>(rng.flip());
      if (std::accumulate(in.begin(), in.end(), 0) % 2 != 0) in[0] ^= 1;
      const auto r = sp.route(in);
      EXPECT_EQ(ones_even(r.out_bits), ones_odd(r.out_bits)) << "p=" << p;
    }
  }
}

TEST(Splitter, OutputsArePermutationOfInputs) {
  // A splitter only permutes: same multiset of bits, and dest is a bijection.
  Rng rng(33);
  const Splitter sp(4);
  const std::size_t n = sp.inputs();
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> in(n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.flip());
    if (std::accumulate(in.begin(), in.end(), 0) % 2 != 0) in[0] ^= 1;
    const auto r = sp.route(in);

    std::vector<bool> hit(n, false);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(r.out_bits[r.dest[j]], in[j]);
      EXPECT_FALSE(hit[r.dest[j]]);
      hit[r.dest[j]] = true;
    }
  }
}

TEST(Splitter, SwitchesOnlyExchangeWithinPairs) {
  // dest must keep each input inside its own 2x2 switch.
  const Splitter sp(3);
  const std::vector<std::uint8_t> in{1, 1, 0, 1, 0, 0, 1, 0};
  const auto r = sp.route(in);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(r.dest[j] / 2, j / 2);
  }
}

TEST(Splitter, Lemma1FlagDirectsType2Pairs) {
  Rng rng(35);
  const Splitter sp(4);
  const std::size_t n = sp.inputs();
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> in(n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.flip());
    if (std::accumulate(in.begin(), in.end(), 0) % 2 != 0) in[0] ^= 1;
    const auto r = sp.route(in);
    for (std::size_t t = 0; t < n / 2; ++t) {
      const auto b0 = in[2 * t];
      const auto b1 = in[2 * t + 1];
      if (b0 == b1) continue;  // type-1
      const auto flag = r.flags[2 * t];
      // Lemma 1: flag 0 -> the 1 goes to OL (odd output); flag 1 -> to OU.
      const std::size_t one_src = (b0 == 1) ? 2 * t : 2 * t + 1;
      const std::size_t one_dst = r.dest[one_src];
      if (flag == 0) {
        EXPECT_EQ(one_dst % 2, 1U);
      } else {
        EXPECT_EQ(one_dst % 2, 0U);
      }
    }
  }
}

TEST(Splitter, OddWeightRejected) {
  const Splitter sp(2);
  const std::vector<std::uint8_t> odd{1, 0, 0, 0};
  EXPECT_THROW((void)sp.route(odd), contract_violation);
}

TEST(Splitter, CensusCountsFig4Elements) {
  // Fig. 4: sp(3) = A(3) (7 nodes) + sw(3) (4 switches).
  const Splitter sp3(3);
  EXPECT_EQ(sp3.census().switches_2x2, 4U);
  EXPECT_EQ(sp3.census().function_nodes, 7U);
  // sp(1): one switch, no nodes.
  const Splitter sp1(1);
  EXPECT_EQ(sp1.census().switches_2x2, 1U);
  EXPECT_EQ(sp1.census().function_nodes, 0U);
}

TEST(Splitter, ArbiterDelayUnits) {
  EXPECT_EQ(Splitter(1).arbiter_delay_fn_units(), 0U);
  EXPECT_EQ(Splitter(2).arbiter_delay_fn_units(), 4U);
  EXPECT_EQ(Splitter(5).arbiter_delay_fn_units(), 10U);
}

}  // namespace
}  // namespace bnb
