// Theorem 2: the BNB network self-routes every permutation.
#include "core/bnb_network.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(BnbNetwork, RoutesTrivialN2) {
  const BnbNetwork net(1);
  EXPECT_TRUE(net.route(Permutation({0, 1})).self_routed);
  EXPECT_TRUE(net.route(Permutation({1, 0})).self_routed);
}

TEST(BnbNetwork, Theorem2ExhaustiveN4) {
  const BnbNetwork net(2);
  Permutation pi(4);
  std::size_t count = 0;
  do {
    const auto r = net.route(pi);
    ASSERT_TRUE(r.self_routed) << pi.to_string();
    ++count;
  } while (pi.next_lexicographic());
  EXPECT_EQ(count, factorial(4));
}

TEST(BnbNetwork, Theorem2ExhaustiveN8) {
  // All 8! = 40320 permutations of an 8-input network.
  const BnbNetwork net(3);
  Permutation pi(8);
  std::size_t count = 0;
  do {
    const auto r = net.route(pi);
    ASSERT_TRUE(r.self_routed) << pi.to_string();
    ++count;
  } while (pi.next_lexicographic());
  EXPECT_EQ(count, factorial(8));
}

TEST(BnbNetwork, RandomPermutationsUpTo64k) {
  Rng rng(51);
  for (const unsigned m : {4U, 6U, 8U, 10U, 12U, 14U, 16U}) {
    const BnbNetwork net(m);
    const int rounds = m <= 10 ? 20 : 3;
    for (int round = 0; round < rounds; ++round) {
      const Permutation pi = random_perm(net.inputs(), rng);
      EXPECT_TRUE(net.route(pi).self_routed) << "m=" << m;
    }
  }
}

TEST(BnbNetwork, DestMatchesAddresses) {
  Rng rng(52);
  const BnbNetwork net(6);
  const Permutation pi = random_perm(64, rng);
  const auto r = net.route(pi);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t j = 0; j < 64; ++j) {
    EXPECT_EQ(r.dest[j], pi(j));  // input j ends at output pi(j)
  }
}

TEST(BnbNetwork, PayloadsTravelWithAddresses) {
  Rng rng(53);
  const BnbNetwork net(8);
  const Permutation pi = random_perm(256, rng);
  std::vector<Word> words(256);
  for (std::size_t j = 0; j < 256; ++j) {
    words[j] = Word{pi(j), 0xABCD000000000000ULL | j};
  }
  const auto r = net.route_words(words);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t line = 0; line < 256; ++line) {
    // The word delivered at `line` is the one that was addressed there,
    // payload intact.
    EXPECT_EQ(r.outputs[line].address, line);
    EXPECT_EQ(r.outputs[line].payload, 0xABCD000000000000ULL | pi.inverse()(line));
  }
}

TEST(BnbNetwork, TraceShowsRadixSortProgress) {
  // After main stage i, every nested block of stage i+1 holds addresses
  // agreeing on the top i+1 bits — the radix-sort invariant of Theorem 2.
  Rng rng(54);
  const unsigned m = 6;
  const BnbNetwork net(m);
  const Permutation pi = random_perm(64, rng);
  const auto r = net.route(pi, /*keep_trace=*/true);
  ASSERT_TRUE(r.self_routed);
  ASSERT_EQ(r.stage_words.size(), m);
  for (unsigned stage = 1; stage < m; ++stage) {
    const std::size_t block = std::size_t{1} << (m - stage);
    const auto& words = r.stage_words[stage];
    for (std::size_t base = 0; base < words.size(); base += block) {
      const std::uint32_t prefix = words[base].address >> (m - stage);
      for (std::size_t j = 0; j < block; ++j) {
        ASSERT_EQ(words[base + j].address >> (m - stage), prefix)
            << "stage " << stage << " block@" << base;
      }
      // Blocks are themselves in ascending prefix order.
      EXPECT_EQ(prefix, base / block);
    }
  }
}

TEST(BnbNetwork, StructuredFamiliesAllRoute) {
  for (const auto f : all_perm_families()) {
    for (const unsigned m : {3U, 5U, 8U, 10U}) {
      const BnbNetwork net(m);
      const Permutation pi = make_perm(f, net.inputs(), 77);
      EXPECT_TRUE(net.route(pi).self_routed)
          << perm_family_name(f) << " m=" << m;
    }
  }
}

TEST(BnbNetwork, NonPermutationAddressesRejected) {
  const BnbNetwork net(2);
  std::vector<Word> words(4);
  for (auto& w : words) w = Word{1, 0};  // duplicate destinations
  EXPECT_THROW((void)net.route_words(words), contract_violation);
}

TEST(BnbNetwork, SizeMismatchRejected) {
  const BnbNetwork net(3);
  EXPECT_THROW((void)net.route(Permutation(4)), contract_violation);
}

TEST(BnbNetwork, DescribeShowsNestingProfile) {
  const BnbNetwork net(3);
  const std::string s = net.describe();
  EXPECT_NE(s.find("main stage-0"), std::string::npos);
  EXPECT_NE(s.find("BSN"), std::string::npos);
  EXPECT_NE(s.find("sp(3)"), std::string::npos);
  EXPECT_NE(s.find("sp(1)"), std::string::npos);
}

TEST(BnbNetwork, LargeSingleShot) {
  // One 2^18-line routing to exercise the big-N path.
  Rng rng(55);
  const BnbNetwork net(18);
  const Permutation pi = random_perm(net.inputs(), rng);
  EXPECT_TRUE(net.route(pi).self_routed);
}

}  // namespace
}  // namespace bnb
