// Value-level element simulation: equivalence with the behavioral router,
// Eq. 9 settle times, and stuck-at fault behavior.
#include "core/element_sim.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/bnb_network.hpp"
#include "core/complexity.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(ElementSim, ExhaustiveN4MatchesBehavioral) {
  const BnbElementSim sim(2);
  const BnbNetwork net(2);
  Permutation pi(4);
  do {
    const auto gate = sim.route(pi);
    const auto behav = net.route(pi);
    ASSERT_TRUE(gate.self_routed) << pi.to_string();
    ASSERT_EQ(gate.dest, behav.dest) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(ElementSim, ExhaustiveN8MatchesBehavioral) {
  const BnbElementSim sim(3);
  const BnbNetwork net(3);
  Permutation pi(8);
  do {
    ASSERT_EQ(sim.route(pi).dest, net.route(pi).dest) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(ElementSim, RandomLargeMatchesBehavioral) {
  Rng rng(121);
  for (const unsigned m : {5U, 8U, 11U}) {
    const BnbElementSim sim(m);
    const BnbNetwork net(m);
    for (int round = 0; round < 5; ++round) {
      const Permutation pi = random_perm(std::size_t{1} << m, rng);
      const auto gate = sim.route(pi);
      EXPECT_TRUE(gate.self_routed);
      EXPECT_EQ(gate.dest, net.route(pi).dest);
    }
  }
}

TEST(ElementSim, SettleTimeEqualsEq9) {
  Rng rng(122);
  for (const unsigned m : {1U, 3U, 5U, 7U, 9U}) {
    const BnbElementSim sim(m);
    const Permutation pi = random_perm(std::size_t{1} << m, rng);
    const auto r = sim.route(pi, 1.0, 1.0);
    const auto d = model::bnb_delay(pow2(m));
    EXPECT_DOUBLE_EQ(r.settle_time, static_cast<double>(d.sw + d.fn)) << "m=" << m;
  }
}

TEST(ElementSim, SettleTimeIsDataIndependent) {
  // Signals always propagate through every element; the slowest output is
  // structural, not data-dependent.
  const BnbElementSim sim(6);
  double first = -1;
  for (const auto f : all_perm_families()) {
    const auto r = sim.route(make_perm(f, 64, 3), 1.5, 2.5);
    if (first < 0) first = r.settle_time;
    EXPECT_DOUBLE_EQ(r.settle_time, first) << perm_family_name(f);
  }
}

TEST(ElementSim, ElementsEvaluatedMatchesCensusPlusDownNodes) {
  // Up pass touches every fn node once, down pass once more (the root's
  // echo counts as its down evaluation); each switch evaluates once.
  const unsigned m = 5;
  const BnbElementSim sim(m);
  const auto r = sim.route(identity_perm(32));
  const auto cost = model::bnb_cost_exact(32, 0);
  std::uint64_t control_switches = 0;
  for (unsigned i = 0; i < m; ++i) control_switches += (pow2(m) / 2) * (m - i);
  EXPECT_EQ(r.elements_evaluated, 2 * cost.fn + control_switches);
}

TEST(ElementSim, FaultSiteEnumerationCountsMatchStructure) {
  const unsigned m = 3;
  const BnbElementSim sim(m);
  const auto sites = sim.all_fault_sites();
  // Count by hand: for each sp(p): (2^p - 1) up + 2^p flags (p >= 2) +
  // 2^{p-1} switches.
  std::uint64_t expect = 0;
  for (unsigned i = 0; i < m; ++i) {
    for (unsigned j = 0; j < m - i; ++j) {
      const unsigned p = m - i - j;
      const std::uint64_t boxes = pow2(m) / pow2(p);
      if (p >= 2) expect += boxes * ((pow2(p) - 1) + pow2(p));
      expect += boxes * pow2(p - 1);
    }
  }
  EXPECT_EQ(sites.size(), expect);
}

TEST(ElementSim, StuckControlFaultMisroutesSomePermutation) {
  const BnbElementSim sim(3);
  Fault f;
  f.site.kind = FaultSite::Kind::kSwitchControl;
  f.site.main_stage = 0;
  f.site.nested_stage = 0;
  f.site.box = 0;
  f.site.index = 0;
  f.stuck_value = true;  // switch frozen to "exchange"

  // Some permutation must be misrouted by a frozen switch.
  Permutation pi(8);
  bool any_misroute = false;
  do {
    const auto r = sim.route_with_faults(pi, std::span<const Fault>(&f, 1));
    if (!r.self_routed) {
      any_misroute = true;
      break;
    }
  } while (pi.next_lexicographic());
  EXPECT_TRUE(any_misroute);
}

TEST(ElementSim, Type1PairToleratesEitherStuckControl) {
  // Identity traffic makes switch 0's pair type-1 at stage 0 (equal MSBs):
  // exchanging two words with the same sorted bit cannot break radix sort,
  // so BOTH stuck polarities are harmless — a genuine robustness property
  // of the design.
  const BnbElementSim sim(3);
  const Permutation pi = identity_perm(8);
  for (const bool v : {false, true}) {
    Fault f;
    f.site.kind = FaultSite::Kind::kSwitchControl;
    f.stuck_value = v;
    EXPECT_TRUE(
        sim.route_with_faults(pi, std::span<const Fault>(&f, 1)).self_routed);
  }
}

TEST(ElementSim, Type2PairHasExactlyOneHarmlessStuckControl) {
  // Make switch 0's pair type-2 at stage 0: addresses 0 (MSB 0) and 4
  // (MSB 1).  The correct control is forced; the opposite polarity breaks
  // the bit balance and must misroute.
  const BnbElementSim sim(3);
  const Permutation pi({0, 4, 1, 2, 3, 5, 6, 7});
  int harmless = 0;
  for (const bool v : {false, true}) {
    Fault f;
    f.site.kind = FaultSite::Kind::kSwitchControl;
    f.stuck_value = v;
    if (sim.route_with_faults(pi, std::span<const Fault>(&f, 1)).self_routed) {
      ++harmless;
    }
  }
  EXPECT_EQ(harmless, 1);
}

TEST(ElementSim, ArbiterUpFaultCanBreakBalance) {
  // A stuck z_u in the first splitter corrupts flag pairing; at least one
  // permutation must misroute.
  const BnbElementSim sim(3);
  Fault f;
  f.site.kind = FaultSite::Kind::kArbiterUp;
  f.site.index = 1;  // root of the sp(3) arbiter
  f.stuck_value = true;

  Rng rng(123);
  bool any_misroute = false;
  for (int round = 0; round < 50; ++round) {
    const Permutation pi = random_perm(8, rng);
    if (!sim.route_with_faults(pi, std::span<const Fault>(&f, 1)).self_routed) {
      any_misroute = true;
      break;
    }
  }
  EXPECT_TRUE(any_misroute);
}

TEST(ElementSim, MultipleFaultsCompose) {
  const BnbElementSim sim(4);
  std::vector<Fault> faults(2);
  faults[0].site.kind = FaultSite::Kind::kSwitchControl;
  faults[0].site.main_stage = 0;
  faults[0].stuck_value = true;
  faults[1].site.kind = FaultSite::Kind::kSwitchControl;
  faults[1].site.main_stage = 1;
  faults[1].stuck_value = false;
  Rng rng(124);
  // The run must complete and be well-defined (dest is a bijection) even
  // when the network misroutes.
  const Permutation pi = random_perm(16, rng);
  const auto r = sim.route_with_faults(pi, faults);
  std::vector<bool> hit(16, false);
  for (const auto d : r.dest) {
    ASSERT_LT(d, 16U);
    ASSERT_FALSE(hit[d]);
    hit[d] = true;
  }
}

}  // namespace
}  // namespace bnb
