// Destination-tag self-routing is blocking (references [7][8]) — the
// motivation for the BNB network.
#include "baselines/destination_tag.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(OmegaDtag, IdentityRoutesConflictFree) {
  for (const unsigned m : {2U, 4U, 6U, 8U}) {
    const OmegaNetwork net(m);
    const auto r = net.route(identity_perm(net.inputs()));
    EXPECT_TRUE(r.conflict_free) << "m=" << m;
    EXPECT_EQ(r.conflicts, 0U);
    EXPECT_EQ(r.delivered, net.inputs());
  }
}

TEST(OmegaDtag, UniformShiftsRouteConflictFree) {
  // Rotations are in the Omega-admissible class (Lawrie).
  const OmegaNetwork net(6);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_TRUE(net.route(rotation_perm(64, k)).conflict_free) << "k=" << k;
  }
}

TEST(OmegaDtag, TransposeBlocks) {
  // The classic Omega blocker: matrix transpose.
  const OmegaNetwork net(6);
  const auto r = net.route(transpose_perm(64));
  EXPECT_FALSE(r.conflict_free);
  EXPECT_GT(r.conflicts, 0U);
  EXPECT_LT(r.delivered, 64U);
}

TEST(OmegaDtag, SomePermutationIsAlwaysBlockedForM2Plus) {
  // Count over all 4! permutations at N = 4: Omega admits exactly
  // N^{N/2} = 16 of the 24 (each switch-setting vector realizes a distinct
  // permutation), so 8 must block.
  const OmegaNetwork net(2);
  Permutation pi(4);
  std::size_t ok = 0;
  std::size_t total = 0;
  do {
    if (net.route(pi).conflict_free) ++ok;
    ++total;
  } while (pi.next_lexicographic());
  EXPECT_EQ(total, 24U);
  EXPECT_EQ(ok, 16U);
}

TEST(OmegaDtag, RandomPermutationsMostlyBlockAtScale) {
  Rng rng(81);
  const OmegaNetwork net(8);
  std::size_t blocked = 0;
  for (int round = 0; round < 50; ++round) {
    if (!net.route(random_perm(256, rng)).conflict_free) ++blocked;
  }
  // With 256 lines a uniform permutation is overwhelmingly likely to block.
  EXPECT_GT(blocked, 45U);
}

TEST(BaselineDtag, BitReversalRoutesConflictFree) {
  // The baseline network's admissible class contains bit-reversal
  // (it is the inverse-Omega class of the same order).
  const BaselineDtagNetwork net(6);
  EXPECT_TRUE(net.route(bit_reversal_perm(64)).conflict_free);
}

TEST(BaselineDtag, IdentityBlocks) {
  // Unlike Omega, the plain baseline network cannot even route identity:
  // adjacent inputs share their MSB and collide in stage 0.
  const BaselineDtagNetwork net(4);
  const auto r = net.route(identity_perm(16));
  EXPECT_FALSE(r.conflict_free);
  EXPECT_GT(r.conflicts, 0U);
}

TEST(BaselineDtag, AdmitsSameCountAsOmegaAtN4) {
  // Both networks have 4 switches at N = 4 -> 16 admissible permutations.
  const BaselineDtagNetwork net(2);
  Permutation pi(4);
  std::size_t ok = 0;
  do {
    if (net.route(pi).conflict_free) ++ok;
  } while (pi.next_lexicographic());
  EXPECT_EQ(ok, 16U);
}

TEST(Dtag, CensusIsMLogStages) {
  EXPECT_EQ(OmegaNetwork(6).census(0).switches_2x2, 6ULL * 32 * 6);
  EXPECT_EQ(BaselineDtagNetwork(6).census(2).switches_2x2, 6ULL * 32 * 8);
}

}  // namespace
}  // namespace bnb
