// Kernel-equivalence suite: every kernel tier this build can run on this
// host must be BIT-IDENTICAL to the scalar reference — on the raw packed
// primitives over randomized zero-tail arrays (1..4096 bits), on the fused
// slice_pass against its three-pass composition, and on full routes
// (exhaustive for m <= 3, randomized up to m = 12), including with a
// non-empty EngineFaults overlay and with ControlTrace capture.  A SIMD
// lane bug that survives this file does not exist.
//
// The tier list is discovered at runtime (kernels::supported_kernel_sets),
// so the same test binary checks scalar+wide everywhere, avx2/avx512 on
// x86 hosts that have them, and neon on aarch64.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/bit_pack.hpp"
#include "core/compiled_bnb.hpp"
#include "core/kernels/kernel_set.hpp"
#include "fault/fault_model.hpp"
#include "fault/injection.hpp"
#include "perm/generators.hpp"

namespace {

using namespace bnb;
using kernels::KernelSet;

std::vector<std::uint64_t> random_packed(std::size_t nbits, Rng& rng) {
  std::vector<std::uint64_t> words(bitpack::words_for(nbits), 0);
  for (auto& w : words) w = rng();
  if (nbits % 64 != 0 && !words.empty()) {
    words.back() &= (std::uint64_t{1} << (nbits % 64)) - 1;  // zero tail
  }
  return words;
}

/// The sweep of logical sizes: every size up to 300 bits (all word-boundary
/// and tail shapes), then a spread of larger ones up to 4096.
std::vector<std::size_t> size_sweep() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 300; ++n) sizes.push_back(n);
  for (std::size_t n : {320UL, 384UL, 511UL, 512UL, 513UL, 777UL, 1024UL,
                        2000UL, 2048UL, 3333UL, 4095UL, 4096UL}) {
    sizes.push_back(n);
  }
  return sizes;
}

// ---- registry and dispatch --------------------------------------------

TEST(Kernels, RegistryListsScalarFirstInAscendingTierOrder) {
  const auto sets = kernels::supported_kernel_sets();
  ASSERT_GE(sets.size(), 2U) << "scalar and wide are always available";
  EXPECT_EQ(sets[0], &kernels::scalar_kernels());
  EXPECT_EQ(sets[1], &kernels::wide_kernels());
  EXPECT_FALSE(sets[0]->wide_datapath) << "scalar routes per-line";
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_STREQ(sets[i]->name, kernels::tier_name(sets[i]->tier));
    if (i > 0) {
      EXPECT_LT(static_cast<int>(sets[i - 1]->tier),
                static_cast<int>(sets[i]->tier));
      EXPECT_TRUE(sets[i]->wide_datapath)
          << sets[i]->name << ": every non-scalar tier is bit-sliced";
    }
    EXPECT_EQ(kernels::find_kernels(sets[i]->name), sets[i])
        << "find_kernels must round-trip every supported name";
  }
  EXPECT_EQ(kernels::find_kernels("not-a-tier"), nullptr);
  EXPECT_EQ(kernels::find_kernels(""), nullptr);
}

TEST(Kernels, ActiveDispatchNeverAutoSelectsWide) {
  // `wide` is the portable datapath reference, strictly slower than scalar
  // on the movement-bound sizes — it must be reachable only by request.
  if (std::getenv("BNB_KERNELS") == nullptr) {
    EXPECT_NE(kernels::active_kernels().tier, kernels::Tier::kWide);
  }
}

TEST(Kernels, EnvOverrideParsing) {
  // kernels_from_env re-reads the variable on every call (unlike
  // active_kernels, which caches its first resolution), so it can be
  // exercised with setenv directly.
  const char* saved = std::getenv("BNB_KERNELS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("BNB_KERNELS");
  EXPECT_EQ(kernels::kernels_from_env(), nullptr);
  ::setenv("BNB_KERNELS", "", 1);
  EXPECT_EQ(kernels::kernels_from_env(), nullptr) << "empty behaves as unset";

  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    ::setenv("BNB_KERNELS", set->name, 1);
    EXPECT_EQ(kernels::kernels_from_env(), set) << set->name;
  }

  ::setenv("BNB_KERNELS", "avx1024", 1);
  EXPECT_THROW((void)kernels::kernels_from_env(), std::runtime_error)
      << "a misspelled override must fail loudly, not fall back";

  if (saved != nullptr) {
    ::setenv("BNB_KERNELS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("BNB_KERNELS");
  }
}

// ---- primitive equivalence --------------------------------------------

TEST(Kernels, CompressPassesMatchScalarOnRandomizedArrays) {
  Rng rng(0xC0DE01);
  const auto& ref = kernels::scalar_kernels();
  for (const std::size_t nbits : size_sweep()) {
    const auto in = random_packed(nbits, rng);
    const std::size_t out_words = bitpack::words_for(nbits / 2);
    std::vector<std::uint64_t> expect_e(out_words + 1), expect_o(out_words + 1),
        expect_x(out_words + 1), got(out_words + 1);
    ref.compress_even(in.data(), nbits, expect_e.data());
    ref.compress_odd(in.data(), nbits, expect_o.data());
    ref.pair_xor_compress(in.data(), nbits, expect_x.data());
    for (const KernelSet* set : kernels::supported_kernel_sets()) {
      set->compress_even(in.data(), nbits, got.data());
      ASSERT_TRUE(std::equal(got.begin(), got.begin() + out_words, expect_e.begin()))
          << set->name << " compress_even nbits=" << nbits;
      set->compress_odd(in.data(), nbits, got.data());
      ASSERT_TRUE(std::equal(got.begin(), got.begin() + out_words, expect_o.begin()))
          << set->name << " compress_odd nbits=" << nbits;
      set->pair_xor_compress(in.data(), nbits, got.data());
      ASSERT_TRUE(std::equal(got.begin(), got.begin() + out_words, expect_x.begin()))
          << set->name << " pair_xor_compress nbits=" << nbits;
    }
  }
}

TEST(Kernels, MovementPassesMatchScalarOnRandomizedArrays) {
  Rng rng(0xC0DE02);
  const auto& ref = kernels::scalar_kernels();
  for (const std::size_t nbits : size_sweep()) {
    const auto a = random_packed(nbits, rng);
    const auto b = random_packed(nbits, rng);
    const std::size_t words = bitpack::words_for(nbits);
    const std::size_t out_words = bitpack::words_for(2 * nbits);
    std::vector<std::uint64_t> expect(out_words + 1), got(out_words + 1);

    ref.interleave_bits(a.data(), b.data(), nbits, expect.data());
    for (const KernelSet* set : kernels::supported_kernel_sets()) {
      set->interleave_bits(a.data(), b.data(), nbits, got.data());
      ASSERT_TRUE(std::equal(got.begin(), got.begin() + out_words, expect.begin()))
          << set->name << " interleave_bits nbits=" << nbits;
    }

    for (std::size_t chunk = 1; chunk <= nbits; chunk *= 2) {
      if (nbits % chunk != 0) break;
      ref.chunk_concat(a.data(), b.data(), nbits, chunk, expect.data());
      for (const KernelSet* set : kernels::supported_kernel_sets()) {
        set->chunk_concat(a.data(), b.data(), nbits, chunk, got.data());
        ASSERT_TRUE(std::equal(got.begin(), got.begin() + out_words, expect.begin()))
            << set->name << " chunk_concat nbits=" << nbits << " chunk=" << chunk;
      }
    }

    const auto ctl = random_packed(nbits, rng);
    std::vector<std::uint64_t> expect_e(a), expect_o(b);
    ref.masked_exchange(expect_e.data(), expect_o.data(), ctl.data(), words);
    std::vector<std::uint64_t> expect_x(a);
    ref.xor_words(expect_x.data(), b.data(), words);
    for (const KernelSet* set : kernels::supported_kernel_sets()) {
      std::vector<std::uint64_t> e(a), o(b);
      set->masked_exchange(e.data(), o.data(), ctl.data(), words);
      ASSERT_TRUE(e == expect_e && o == expect_o)
          << set->name << " masked_exchange nbits=" << nbits;
      std::vector<std::uint64_t> d(a);
      set->xor_words(d.data(), b.data(), words);
      ASSERT_EQ(d, expect_x) << set->name << " xor_words nbits=" << nbits;
    }
  }
}

TEST(Kernels, SlicePassMatchesItsThreePassComposition) {
  Rng rng(0xC0DE03);
  const auto& ref = kernels::scalar_kernels();
  for (std::size_t nbits = 2; nbits <= 4096; nbits *= 2) {
    const auto in = random_packed(nbits, rng);
    const std::size_t words = bitpack::words_for(nbits);
    const std::size_t half_words = bitpack::words_for(nbits / 2);
    const auto ctl = random_packed(nbits / 2, rng);
    for (std::size_t chunk = 1; 2 * chunk <= nbits; chunk *= 2) {
      // Reference: explicit compress -> masked exchange -> chunk_concat.
      std::vector<std::uint64_t> e(half_words + 1), o(half_words + 1),
          expect(words + 1), got(words + 1), tmp(words + 1);
      ref.compress_even(in.data(), nbits, e.data());
      ref.compress_odd(in.data(), nbits, o.data());
      ref.masked_exchange(e.data(), o.data(), ctl.data(), half_words);
      ref.chunk_concat(e.data(), o.data(), nbits / 2, chunk, expect.data());
      for (const KernelSet* set : kernels::supported_kernel_sets()) {
        set->slice_pass(in.data(), nbits, ctl.data(), chunk, tmp.data(), got.data());
        ASSERT_TRUE(std::equal(got.begin(), got.begin() + words, expect.begin()))
            << set->name << " slice_pass nbits=" << nbits << " chunk=" << chunk;
      }
    }
  }
}

TEST(Kernels, Transpose64x64MatchesBitDefinitionAndIsAnInvolution) {
  Rng rng(0xC0DE04);
  std::uint64_t x[64];
  std::uint64_t orig[64];
  for (auto& w : x) w = rng();
  std::copy(std::begin(x), std::end(x), std::begin(orig));
  bitpack::transpose_64x64(x);
  for (unsigned i = 0; i < 64; ++i) {
    for (unsigned j = 0; j < 64; ++j) {
      ASSERT_EQ((x[j] >> i) & 1U, (orig[i] >> j) & 1U)
          << "bit (" << i << "," << j << ")";
    }
  }
  bitpack::transpose_64x64(x);
  EXPECT_TRUE(std::equal(std::begin(x), std::end(x), std::begin(orig)));
}

// ---- full-route equivalence -------------------------------------------

/// Route `pi` through a plan per tier and require outputs, destinations,
/// self_routed, and (when tracing) every column's packed controls to be
/// bit-identical to the scalar plan's.
void expect_route_equivalence(unsigned m, const Permutation& pi,
                              const EngineFaults* faults, bool with_trace) {
  const CompiledBnb ref_plan(m, &kernels::scalar_kernels());
  RouteScratch ref_scratch;
  ControlTrace ref_trace;
  const auto ref_out = ref_plan.route(pi, ref_scratch,
                                      with_trace ? &ref_trace : nullptr, faults);

  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    const CompiledBnb plan(m, set);
    RouteScratch scratch;
    ControlTrace trace;
    const auto out = plan.route(pi, scratch, with_trace ? &trace : nullptr, faults);
    ASSERT_EQ(out.self_routed, ref_out.self_routed) << set->name << " m=" << m;
    for (std::size_t line = 0; line < plan.inputs(); ++line) {
      ASSERT_EQ(out.dest[line], ref_out.dest[line])
          << set->name << " m=" << m << " dest[" << line << "]";
      ASSERT_EQ(out.outputs[line].address, ref_out.outputs[line].address)
          << set->name << " m=" << m << " address at line " << line;
      ASSERT_EQ(out.outputs[line].payload, ref_out.outputs[line].payload)
          << set->name << " m=" << m << " payload at line " << line;
    }
    if (with_trace) {
      ASSERT_EQ(trace.column_controls, ref_trace.column_controls)
          << set->name << " m=" << m << ": ControlTrace diverged";
    }
  }
}

TEST(Kernels, FullRoutesMatchScalarExhaustivelyForSmallM) {
  for (unsigned m = 1; m <= 3; ++m) {
    Permutation pi = identity_perm(std::size_t{1} << m);
    do {
      expect_route_equivalence(m, pi, nullptr, /*with_trace=*/false);
    } while (pi.next_lexicographic());
  }
}

TEST(Kernels, FullRoutesMatchScalarRandomizedUpToM12) {
  Rng rng(0xC0DE05);
  for (const unsigned m : {4U, 5U, 6U, 7U, 8U, 10U, 12U}) {
    const int reps = m <= 8 ? 4 : 2;
    for (int r = 0; r < reps; ++r) {
      expect_route_equivalence(m, random_perm(std::size_t{1} << m, rng), nullptr,
                               /*with_trace=*/r == 0);
    }
  }
}

TEST(Kernels, RouteWordsPayloadsSurviveEveryTier) {
  // The wide datapath never moves payloads through the network — it carries
  // input-index slices and re-attaches payloads at delivery.  Arbitrary
  // 64-bit payloads must come through bit-identically anyway.
  Rng rng(0xC0DE06);
  const unsigned m = 7;
  const std::size_t n = std::size_t{1} << m;
  const Permutation pi = random_perm(n, rng);
  std::vector<Word> words(n);
  for (std::size_t j = 0; j < n; ++j) {
    words[j] = Word{static_cast<std::uint32_t>(pi(j)), rng()};
  }
  const CompiledBnb ref_plan(m, &kernels::scalar_kernels());
  RouteScratch ref_scratch;
  const auto ref_out = ref_plan.route_words(words, ref_scratch);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    const CompiledBnb plan(m, set);
    RouteScratch scratch;
    const auto out = plan.route_words(words, scratch);
    for (std::size_t line = 0; line < n; ++line) {
      ASSERT_EQ(out.outputs[line].payload, ref_out.outputs[line].payload)
          << set->name << " line " << line;
      ASSERT_EQ(out.dest[line], ref_out.dest[line]) << set->name;
    }
  }
}

TEST(Kernels, FaultOverlaysAndTraceMatchScalarForEverySingleFault) {
  // Every single hardware fault of the m=4 network, compiled to an engine
  // overlay and routed with trace capture on every tier: stuck controls,
  // stuck flags, link flips, and dead crosspoints all steer the wide
  // datapath exactly as they steer the per-line engine.
  Rng rng(0xC0DE07);
  const unsigned m = 4;
  const Permutation pi = random_perm(std::size_t{1} << m, rng);
  for (const FaultSpec& spec : FaultModel::all_single_faults(m)) {
    FaultModel model(m);
    model.add(spec);
    const EngineFaults overlay = compile_engine_faults(model);
    expect_route_equivalence(m, pi, &overlay, /*with_trace=*/true);
  }
}

TEST(Kernels, MultiFaultCampaignMatchesScalarAtMediumSize) {
  Rng rng(0xC0DE08);
  const unsigned m = 6;
  FaultModel model(m);
  for (const FaultSpec& spec : FaultModel::random_campaign(m, 12, rng)) {
    model.add(spec);
  }
  const EngineFaults overlay = compile_engine_faults(model);
  for (int r = 0; r < 3; ++r) {
    expect_route_equivalence(m, random_perm(std::size_t{1} << m, rng), &overlay,
                             /*with_trace=*/true);
  }
}

TEST(Kernels, BatchResultsMatchAcrossTiers) {
  Rng rng(0xC0DE09);
  const unsigned m = 6;
  std::vector<Permutation> perms;
  for (int i = 0; i < 12; ++i) perms.push_back(random_perm(std::size_t{1} << m, rng));
  const CompiledBnb ref_plan(m, &kernels::scalar_kernels());
  const BatchResult ref = ref_plan.route_batch(perms, 2);
  for (const KernelSet* set : kernels::supported_kernel_sets()) {
    const CompiledBnb plan(m, set);
    const BatchResult got = plan.route_batch(perms, 3);
    EXPECT_EQ(got.dest, ref.dest) << set->name;
    EXPECT_EQ(got.all_self_routed, ref.all_self_routed) << set->name;
  }
}

}  // namespace
