#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace bnb {
namespace {

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(4));
  EXPECT_FALSE(is_power_of_two(6));
  EXPECT_TRUE(is_power_of_two(std::uint64_t{1} << 63));
  EXPECT_FALSE(is_power_of_two((std::uint64_t{1} << 63) + 1));
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0U);
  EXPECT_EQ(floor_log2(2), 1U);
  EXPECT_EQ(floor_log2(3), 1U);
  EXPECT_EQ(floor_log2(4), 2U);
  EXPECT_EQ(floor_log2(1023), 9U);
  EXPECT_EQ(floor_log2(1024), 10U);
}

TEST(MathUtil, Log2ExactAcceptsPowersOfTwo) {
  for (unsigned k = 0; k < 40; ++k) {
    EXPECT_EQ(log2_exact(std::uint64_t{1} << k), k);
  }
}

TEST(MathUtil, Log2ExactRejectsNonPowers) {
  EXPECT_THROW((void)log2_exact(0), contract_violation);
  EXPECT_THROW((void)log2_exact(3), contract_violation);
  EXPECT_THROW((void)log2_exact(12), contract_violation);
}

TEST(MathUtil, Pow2) {
  EXPECT_EQ(pow2(0), 1ULL);
  EXPECT_EQ(pow2(10), 1024ULL);
  EXPECT_EQ(pow2(63), std::uint64_t{1} << 63);
  EXPECT_THROW((void)pow2(64), contract_violation);
}

TEST(MathUtil, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100ULL);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011ULL);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101ULL);
  EXPECT_EQ(reverse_bits(0, 10), 0ULL);
  // Involution: reversing twice restores the value.
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 6), 6), v);
  }
}

TEST(MathUtil, BitOf) {
  EXPECT_EQ(bit_of(0b1010, 0), 0U);
  EXPECT_EQ(bit_of(0b1010, 1), 1U);
  EXPECT_EQ(bit_of(0b1010, 2), 0U);
  EXPECT_EQ(bit_of(0b1010, 3), 1U);
}

TEST(MathUtil, Factorial) {
  EXPECT_EQ(factorial(0), 1ULL);
  EXPECT_EQ(factorial(1), 1ULL);
  EXPECT_EQ(factorial(4), 24ULL);
  EXPECT_EQ(factorial(8), 40320ULL);
  EXPECT_EQ(factorial(20), 2432902008176640000ULL);
  EXPECT_THROW((void)factorial(21), contract_violation);
}

TEST(MathUtil, Ipow) {
  EXPECT_EQ(ipow(3, 0), 1ULL);
  EXPECT_EQ(ipow(3, 4), 81ULL);
  EXPECT_EQ(ipow(2, 20), 1ULL << 20);
}

}  // namespace
}  // namespace bnb
