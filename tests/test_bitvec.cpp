#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace bnb {
namespace {

TEST(BitVec, ConstructAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100U);
  EXPECT_EQ(v.count_ones(), 0U);
  EXPECT_EQ(v.count_zeros(), 100U);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, ConstructAllOne) {
  BitVec v(70, true);
  EXPECT_EQ(v.count_ones(), 70U);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.count_ones(), 3U);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count_ones(), 2U);
  v.set(0, false);
  EXPECT_EQ(v.count_ones(), 1U);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW((void)v.get(10), contract_violation);
  EXPECT_THROW(v.set(10, true), contract_violation);
  EXPECT_THROW(v.flip(11), contract_violation);
}

TEST(BitVec, FromToString) {
  const std::string s = "0110100110010110";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count_ones(), 8U);
  EXPECT_THROW(BitVec::from_string("01x"), contract_violation);
}

TEST(BitVec, EvenOddOnesCounts) {
  // 1s at indices 0 (even), 3 (odd), 4 (even), 7 (odd).
  BitVec v = BitVec::from_string("10011001");
  EXPECT_EQ(v.count_ones_even(), 2U);
  EXPECT_EQ(v.count_ones_odd(), 2U);

  BitVec w = BitVec::from_string("1111");
  EXPECT_EQ(w.count_ones_even(), 2U);
  EXPECT_EQ(w.count_ones_odd(), 2U);

  BitVec z = BitVec::from_string("1010");
  EXPECT_EQ(z.count_ones_even(), 2U);
  EXPECT_EQ(z.count_ones_odd(), 0U);
}

TEST(BitVec, EvenOddAgreeWithNaiveOnRandom) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(300);
    BitVec v(n);
    std::size_t even = 0;
    std::size_t odd = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool b = rng.flip();
      v.set(i, b);
      if (b) ((i % 2 == 0) ? even : odd)++;
    }
    EXPECT_EQ(v.count_ones_even(), even);
    EXPECT_EQ(v.count_ones_odd(), odd);
  }
}

TEST(BitVec, AppendAndResize) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.append(i % 3 == 0);
  EXPECT_EQ(v.size(), 100U);
  EXPECT_EQ(v.count_ones(), 34U);
  v.resize(50);
  EXPECT_EQ(v.size(), 50U);
  EXPECT_EQ(v.count_ones(), 17U);
  v.resize(60, true);
  EXPECT_EQ(v.count_ones(), 27U);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(BitVec, EqualityIgnoresStaleTailBits) {
  BitVec a(65);
  BitVec b(65, true);
  b.resize(0);
  b.resize(65);  // same logical content as a
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bnb
