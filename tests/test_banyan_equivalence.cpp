// Banyan admissibility (unique-path check) and Wu-Feng equivalence [12].
#include "baselines/banyan_equivalence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/destination_tag.hpp"
#include "common/rng.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(BanyanAdmissible, AgreesWithOmegaDtagSimulator) {
  // Two independent implementations of "does Omega route pi": the greedy
  // conflict-counting simulator and the unique-path occupancy check.
  Rng rng(231);
  for (const unsigned m : {2U, 3U, 5U, 7U}) {
    const OmegaNetwork omega(m);
    const std::size_t n = std::size_t{1} << m;
    for (int round = 0; round < 50; ++round) {
      const Permutation pi = random_perm(n, rng);
      EXPECT_EQ(banyan_admissible(BanyanKind::kOmega, pi),
                omega.route(pi).conflict_free)
          << "m=" << m;
    }
    for (const auto f : all_perm_families()) {
      const Permutation pi = make_perm(f, n, 3);
      EXPECT_EQ(banyan_admissible(BanyanKind::kOmega, pi),
                omega.route(pi).conflict_free)
          << perm_family_name(f);
    }
  }
}

TEST(BanyanAdmissible, AgreesWithBaselineDtagSimulator) {
  Rng rng(232);
  for (const unsigned m : {2U, 3U, 5U, 7U}) {
    const BaselineDtagNetwork baseline(m);
    const std::size_t n = std::size_t{1} << m;
    for (int round = 0; round < 50; ++round) {
      const Permutation pi = random_perm(n, rng);
      EXPECT_EQ(banyan_admissible(BanyanKind::kBaseline, pi),
                baseline.route(pi).conflict_free)
          << "m=" << m;
    }
  }
}

TEST(BanyanAdmissible, KnownCases) {
  EXPECT_TRUE(banyan_admissible(BanyanKind::kOmega, identity_perm(64)));
  EXPECT_FALSE(banyan_admissible(BanyanKind::kOmega, transpose_perm(64)));
  EXPECT_FALSE(banyan_admissible(BanyanKind::kBaseline, identity_perm(64)));
  EXPECT_TRUE(banyan_admissible(BanyanKind::kBaseline, bit_reversal_perm(64)));
}

TEST(AllRealizable, CountsAndDistinctness) {
  // Unique paths make settings -> permutation injective: 2^{m 2^{m-1}}
  // distinct permutations.
  for (const unsigned m : {1U, 2U, 3U}) {
    for (const auto kind : {BanyanKind::kOmega, BanyanKind::kBaseline}) {
      const auto perms = all_realizable(kind, m);
      std::set<std::string> distinct;
      for (const auto& p : perms) distinct.insert(p.to_string());
      EXPECT_EQ(distinct.size(), perms.size());
      EXPECT_EQ(perms.size(),
                std::size_t{1} << (m * (std::size_t{1} << (m - 1))));
    }
  }
}

TEST(AllRealizable, EveryRealizableIsAdmissibleAndConverse) {
  // The realizable set and the admissible set coincide (N = 8): every
  // setting's permutation is admissible, and admissible permutations are
  // exactly those produced by some setting.
  const auto perms = all_realizable(BanyanKind::kOmega, 3);
  std::set<std::string> realizable;
  for (const auto& p : perms) {
    EXPECT_TRUE(banyan_admissible(BanyanKind::kOmega, p));
    realizable.insert(p.to_string());
  }
  Permutation pi(8);
  std::size_t admissible = 0;
  do {
    if (banyan_admissible(BanyanKind::kOmega, pi)) {
      ++admissible;
      EXPECT_TRUE(realizable.count(pi.to_string()) == 1);
    }
  } while (pi.next_lexicographic());
  EXPECT_EQ(admissible, realizable.size());
}

TEST(WuFengEquivalence, WitnessExistsForSmallM) {
  for (const unsigned m : {2U, 3U}) {
    const auto w = find_equivalence(m, 100, 5);
    EXPECT_TRUE(w.found) << "m=" << m;
  }
}

TEST(WuFengEquivalence, WitnessValidatesOnFreshSamples) {
  const auto w = find_equivalence(3, 50, 7);
  ASSERT_TRUE(w.found);
  // Independent validation with a different seed: baseline-admissible
  // permutations map to Omega-admissible ones.
  Rng rng(233);
  for (int round = 0; round < 200; ++round) {
    const Permutation pi = random_perm(8, rng);
    EXPECT_EQ(banyan_admissible(BanyanKind::kBaseline, pi),
              banyan_admissible(BanyanKind::kOmega,
                                w.output_relabel.compose(pi).compose(w.input_relabel)));
  }
}

TEST(WuFengEquivalence, WitnessExistsAtM4BySampling) {
  const auto w = find_equivalence(4, 150, 11);
  EXPECT_TRUE(w.found);
}

}  // namespace
}  // namespace bnb
