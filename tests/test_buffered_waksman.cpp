// Waksman-optimized Benes and the input-buffered retry banyan.
#include <gtest/gtest.h>

#include "baselines/benes.hpp"
#include "baselines/buffered_banyan.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "perm/classes.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Waksman, SwitchCountClosedForm) {
  // N log N - N + 1 vs the plain Benes (2 log N - 1) N/2.
  for (unsigned m = 1; m <= 12; ++m) {
    const std::uint64_t n = pow2(m);
    EXPECT_EQ(BenesNetwork(m, true).switch_count(), n * m - n + 1);
    EXPECT_EQ(BenesNetwork(m, false).switch_count(), (2 * m - 1) * (n / 2));
    EXPECT_LE(BenesNetwork(m, true).switch_count(),
              BenesNetwork(m, false).switch_count());
  }
}

TEST(Waksman, ExhaustiveN8StillRoutesEverything) {
  const BenesNetwork net(3, true);
  Permutation pi(8);
  do {
    ASSERT_TRUE(net.route(pi).self_routed) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(Waksman, FixedSwitchesAreAlwaysStraight) {
  // In every plan, the bottom output switch of every recursion block is
  // straight — the hardware saving Waksman's construction banks on.
  Rng rng(201);
  const unsigned m = 5;
  const BenesNetwork net(m, true);
  for (int round = 0; round < 40; ++round) {
    const auto plan = net.set_up(random_perm(32, rng));
    // Recursion blocks: depth d has blocks of size 2^(m-d) at the output
    // stage 2m-2-d; the fixed switch of the block starting at `base` is the
    // block's last switch.
    for (unsigned d = 0; d + 1 < m; ++d) {  // k = m-d >= 2
      const std::size_t block = std::size_t{1} << (m - d);
      const unsigned out_stage = 2 * m - 2 - d;
      for (std::size_t base = 0; base < 32; base += block) {
        const std::size_t fixed_switch = base / 2 + block / 2 - 1;
        EXPECT_EQ(plan.settings[out_stage][fixed_switch], 0)
            << "d=" << d << " base=" << base;
      }
    }
  }
}

TEST(Waksman, AgreesWithPlainBenesOnWords) {
  Rng rng(202);
  const BenesNetwork plain(6, false);
  const BenesNetwork waksman(6, true);
  for (int round = 0; round < 10; ++round) {
    const Permutation pi = random_perm(64, rng);
    EXPECT_EQ(plain.route(pi).outputs, waksman.route(pi).outputs);
  }
}

TEST(BufferedBanyan, IdentityDrainsInOneCycle) {
  const BufferedOmegaSwitch sw(5);
  const auto r = sw.drain(identity_perm(32));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cycles, 1U);
  EXPECT_EQ(r.total_conflicts, 0U);
  EXPECT_EQ(r.delivered, 32U);
}

TEST(BufferedBanyan, TransposeNeedsMultipleCycles) {
  const BufferedOmegaSwitch sw(6);
  const auto r = sw.drain(transpose_perm(64));
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.cycles, 1U);
  EXPECT_EQ(r.delivered, 64U);
}

TEST(BufferedBanyan, AlwaysDrainsCompletely) {
  Rng rng(203);
  for (const unsigned m : {3U, 5U, 7U}) {
    const BufferedOmegaSwitch sw(m);
    for (int round = 0; round < 10; ++round) {
      const auto r = sw.drain(random_perm(pow2(m), rng));
      EXPECT_TRUE(r.complete) << "m=" << m;
      EXPECT_EQ(r.delivered, pow2(m));
      // At least one packet survives every pass, so cycles <= N.
      EXPECT_LE(r.cycles, pow2(m));
    }
  }
}

TEST(BufferedBanyan, PerCycleProfileSumsToN) {
  Rng rng(204);
  const BufferedOmegaSwitch sw(6);
  const auto r = sw.drain(random_perm(64, rng));
  std::uint64_t sum = 0;
  for (const auto d : r.per_cycle) sum += d;
  EXPECT_EQ(sum, 64U);
  EXPECT_EQ(r.per_cycle.size(), r.cycles);
}

TEST(BufferedBanyan, AllFamiliesDrain) {
  for (const auto f : all_perm_families()) {
    const BufferedOmegaSwitch sw(5);
    const auto r = sw.drain(make_perm(f, 32, 7));
    EXPECT_TRUE(r.complete) << perm_family_name(f);
  }
}

}  // namespace
}  // namespace bnb
