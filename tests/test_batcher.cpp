// Batcher's odd-even sorting network (reference [9], Eqs. 10-12).
#include "baselines/batcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/complexity.hpp"
#include "perm/generators.hpp"

namespace bnb {
namespace {

TEST(Batcher, ComparatorCountMatchesEq10) {
  for (unsigned m = 1; m <= 14; ++m) {
    const BatcherNetwork net(m);
    EXPECT_EQ(net.comparator_count(), model::batcher_comparator_count(pow2(m)))
        << "m=" << m;
  }
}

TEST(Batcher, DepthIsHalfLogSquaredPlusHalfLog) {
  for (unsigned m = 1; m <= 14; ++m) {
    const BatcherNetwork net(m);
    EXPECT_EQ(net.depth(), model::batcher_stage_count(pow2(m))) << "m=" << m;
  }
}

TEST(Batcher, StagesUseDisjointLines) {
  // Comparators within one stage must touch disjoint lines (parallel step).
  const BatcherNetwork net(5);
  for (const auto& stage : net.stages()) {
    std::vector<bool> used(net.inputs(), false);
    for (const auto& c : stage) {
      ASSERT_LT(c.low, c.high);
      ASSERT_FALSE(used[c.low]);
      ASSERT_FALSE(used[c.high]);
      used[c.low] = used[c.high] = true;
    }
  }
}

TEST(Batcher, ZeroOnePrincipleExhaustive) {
  // A comparator network sorts everything iff it sorts all 0/1 inputs.
  for (const unsigned m : {1U, 2U, 3U, 4U}) {
    const BatcherNetwork net(m);
    const std::size_t n = net.inputs();
    for (std::uint64_t v = 0; v < pow2(static_cast<unsigned>(n)); ++v) {
      std::vector<std::uint64_t> keys(n);
      for (std::size_t i = 0; i < n; ++i) keys[i] = (v >> i) & 1U;
      const auto out = net.sort_keys(keys);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "m=" << m << " v=" << v;
    }
  }
}

TEST(Batcher, SortsRandomKeysWithDuplicates) {
  Rng rng(61);
  const BatcherNetwork net(8);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> keys(256);
    for (auto& k : keys) k = rng.below(32);  // heavy duplication
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(net.sort_keys(keys), expect);
  }
}

TEST(Batcher, RoutesAllPermutationsN8Exhaustive) {
  const BatcherNetwork net(3);
  Permutation pi(8);
  do {
    ASSERT_TRUE(net.route(pi).self_routed) << pi.to_string();
  } while (pi.next_lexicographic());
}

TEST(Batcher, RoutesRandomLarge) {
  Rng rng(62);
  for (const unsigned m : {6U, 10U, 12U}) {
    const BatcherNetwork net(m);
    const Permutation pi = random_perm(net.inputs(), rng);
    const auto r = net.route(pi);
    EXPECT_TRUE(r.self_routed);
    for (std::size_t j = 0; j < net.inputs(); ++j) EXPECT_EQ(r.dest[j], pi(j));
  }
}

TEST(Batcher, PayloadsFollowAddresses) {
  Rng rng(63);
  const BatcherNetwork net(7);
  const Permutation pi = random_perm(128, rng);
  std::vector<Word> words(128);
  for (std::size_t j = 0; j < 128; ++j) words[j] = Word{pi(j), 1000 + j};
  const auto r = net.route_words(words);
  ASSERT_TRUE(r.self_routed);
  for (std::size_t line = 0; line < 128; ++line) {
    EXPECT_EQ(r.outputs[line].payload, 1000 + pi.inverse()(line));
  }
}

TEST(Batcher, CensusMatchesEq11) {
  for (const unsigned w : {0U, 8U}) {
    for (unsigned m = 1; m <= 12; ++m) {
      const BatcherNetwork net(m);
      const auto c = net.census(w);
      const auto predicted = model::batcher_cost(pow2(m), w);
      EXPECT_EQ(c.switches_2x2, predicted.sw);
      EXPECT_EQ(c.function_nodes, predicted.fn);
    }
  }
}

TEST(Batcher, MeasuredCriticalPathMatchesEq12) {
  // The comparator DAG's longest chain hits every stage, so the measured
  // path equals Eq. 12's synchronous model.
  for (unsigned m = 1; m <= 10; ++m) {
    const BatcherNetwork net(m);
    const auto g = net.build_delay_graph();
    const auto d = model::batcher_delay(pow2(m));
    const auto r = g.critical_path(1.0, 1.0);
    EXPECT_EQ(r.units.sw, d.sw) << "m=" << m;
    EXPECT_EQ(r.units.fn, d.fn) << "m=" << m;
  }
}

}  // namespace
}  // namespace bnb
