// Section 5: the closed-form cost/delay models, Eqs. 1-12 and Tables 1-2.
#include "core/complexity.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace bnb::model {
namespace {

TEST(Complexity, NestedArbiterCostSmallCases) {
  // Eq. 4 closed form P log(P/2) - P/2 + 1.
  EXPECT_EQ(nested_arbiter_cost(2), 0U);    // one sp(1): wiring only
  EXPECT_EQ(nested_arbiter_cost(4), 3U);    // one A(2)
  EXPECT_EQ(nested_arbiter_cost(8), 13U);   // A(3) + 2 A(2) = 7 + 6
  EXPECT_EQ(nested_arbiter_cost(16), 41U);  // 15 + 2*13
}

TEST(Complexity, NestedArbiterCostSatisfiesRecurrence) {
  // Eq. 4: C_NB,A(P) = (P - 1) + 2 C_NB,A(P/2), with A(1) = wiring.
  for (std::uint64_t P = 4; P <= (1ULL << 16); P *= 2) {
    EXPECT_EQ(nested_arbiter_cost(P), (P - 1) + 2 * nested_arbiter_cost(P / 2));
  }
}

TEST(Complexity, NestedNetworkCostEq5) {
  // P = 8, w = 0: (4*3*3) switches + 13 nodes.
  const Cost c = nested_network_cost(8, 0);
  EXPECT_EQ(c.sw, 36U);
  EXPECT_EQ(c.fn, 13U);
  // w = 2 adds 2 slices: (4*3*5).
  EXPECT_EQ(nested_network_cost(8, 2).sw, 60U);
}

TEST(Complexity, Eq6ClosedFormMatchesRecurrence) {
  // The paper derives Eq. 6 from recurrence Eq. 1; both must agree exactly.
  for (const std::uint64_t w : {0ULL, 1ULL, 8ULL, 32ULL}) {
    for (std::uint64_t N = 2; N <= (1ULL << 20); N *= 2) {
      EXPECT_EQ(bnb_cost_exact(N, w), bnb_cost_recurrence(N, w))
          << "N=" << N << " w=" << w;
    }
  }
}

TEST(Complexity, Eq6KnownValues) {
  // Hand-computed: N=4, w=0 -> 10 C_SW + 3 C_FN.
  EXPECT_EQ(bnb_cost_exact(4, 0), (Cost{10, 3, 0}));
  // N=2: a single sp(1) = 1 switch.
  EXPECT_EQ(bnb_cost_exact(2, 0), (Cost{1, 0, 0}));
}

TEST(Complexity, Eq7SwitchStages) {
  EXPECT_EQ(bnb_delay_sw_units(2), 1U);
  EXPECT_EQ(bnb_delay_sw_units(4), 3U);
  EXPECT_EQ(bnb_delay_sw_units(8), 6U);
  EXPECT_EQ(bnb_delay_sw_units(1024), 55U);
}

TEST(Complexity, Eq8ArbiterLevels) {
  // Direct double-sum 2 * sum_{k=2}^{m} sum_{l=2}^{k} l vs the closed form.
  for (unsigned m = 1; m <= 20; ++m) {
    std::uint64_t direct = 0;
    for (unsigned k = 2; k <= m; ++k) {
      for (unsigned l = 2; l <= k; ++l) direct += l;
    }
    direct *= 2;
    EXPECT_EQ(bnb_delay_fn_units(pow2(m)), direct) << "m=" << m;
  }
}

TEST(Complexity, Eq9Combines7And8) {
  for (std::uint64_t N = 2; N <= (1ULL << 16); N *= 2) {
    const Delay d = bnb_delay(N);
    EXPECT_EQ(d.sw, bnb_delay_sw_units(N));
    EXPECT_EQ(d.fn, bnb_delay_fn_units(N));
  }
}

TEST(Complexity, Eq10BatcherComparators) {
  EXPECT_EQ(batcher_comparator_count(2), 1U);
  EXPECT_EQ(batcher_comparator_count(4), 5U);
  EXPECT_EQ(batcher_comparator_count(8), 19U);
  EXPECT_EQ(batcher_comparator_count(16), 63U);
  EXPECT_EQ(batcher_comparator_count(1024), 24063U);
}

TEST(Complexity, Eq11BatcherCost) {
  // Each comparator: (m + w) switch slices + m function slices.
  for (const std::uint64_t w : {0ULL, 8ULL}) {
    for (std::uint64_t N = 2; N <= (1ULL << 14); N *= 2) {
      const std::uint64_t m = log2_exact(N);
      const std::uint64_t ce = batcher_comparator_count(N);
      const Cost c = batcher_cost(N, w);
      EXPECT_EQ(c.sw, ce * (m + w));
      EXPECT_EQ(c.fn, ce * m);
    }
  }
}

TEST(Complexity, Eq12BatcherDelay) {
  // (1/2 m^3 + 1/2 m^2) D_FN + (1/2 m^2 + 1/2 m) D_SW.
  for (unsigned m = 1; m <= 20; ++m) {
    const Delay d = batcher_delay(pow2(m));
    EXPECT_EQ(d.sw, std::uint64_t{m} * (m + 1) / 2);
    EXPECT_EQ(d.fn, std::uint64_t{m} * m * (m + 1) / 2);
  }
}

TEST(Complexity, KoppelmanDelayTable2Row) {
  // (2/3)m^3 - m^2 + m/3 + 1.
  EXPECT_EQ(koppelman_delay_units(4), 3U);    // m=2
  EXPECT_EQ(koppelman_delay_units(8), 11U);   // m=3
  EXPECT_EQ(koppelman_delay_units(16), 29U);  // m=4
}

TEST(Complexity, Table1LeadingTermRelations) {
  // The paper's headline: BNB uses 2/3 of Batcher's switches (N/6 vs N/4
  // log^3 N)... but with the BNB's extra fn column far cheaper.
  for (std::uint64_t N = 16; N <= (1ULL << 20); N *= 16) {
    const auto bat = table1_leading(NetworkKind::kBatcher, N);
    const auto kop = table1_leading(NetworkKind::kKoppelman, N);
    const auto bnb = table1_leading(NetworkKind::kBnb, N);
    EXPECT_DOUBLE_EQ(bnb.switches / bat.switches, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(kop.switches, bat.switches);
    EXPECT_DOUBLE_EQ(kop.adder_slices, 2 * kop.function_slices);
    EXPECT_DOUBLE_EQ(bnb.adder_slices, 0.0);
    // BNB's function hardware is asymptotically negligible vs Batcher's.
    EXPECT_LT(bnb.function_slices, bat.function_slices);
  }
}

TEST(Complexity, Table2DelayOrderingBeyondCrossovers) {
  // The published polynomials cross: BNB beats Batcher's row from N = 64
  // (they tie at N = 32) and beats Koppelman's from N = 128.  Past both
  // crossovers the ordering is strict for good.
  EXPECT_DOUBLE_EQ(table2_delay(NetworkKind::kBnb, 32),
                   table2_delay(NetworkKind::kBatcher, 32));
  for (std::uint64_t N = 128; N <= (1ULL << 24); N *= 2) {
    const double bat = table2_delay(NetworkKind::kBatcher, N);
    const double kop = table2_delay(NetworkKind::kKoppelman, N);
    const double bnb = table2_delay(NetworkKind::kBnb, N);
    EXPECT_LT(bnb, bat) << N;
    EXPECT_LT(bnb, kop) << N;
  }
}

TEST(Complexity, HeadlineRatiosByHighestOrderTerm) {
  // Section 6 states the claims "by the highest order term comparison":
  // hardware N/6 log^3 N vs Batcher's (N/4 + N/4) log^3 N  -> 1/3,
  // delay (1/3) log^3 N vs (1/2) log^3 N                   -> 2/3.
  for (std::uint64_t N = 16; N <= (1ULL << 20); N *= 16) {
    const auto bat_hw = table1_leading(NetworkKind::kBatcher, N);
    const auto bnb_hw = table1_leading(NetworkKind::kBnb, N);
    EXPECT_DOUBLE_EQ(bnb_hw.switches / (bat_hw.switches + bat_hw.function_slices),
                     1.0 / 3.0);
  }
  const double m = 20.0;
  EXPECT_DOUBLE_EQ(((1.0 / 3.0) * m * m * m) / ((1.0 / 2.0) * m * m * m), 2.0 / 3.0);
}

TEST(Complexity, FullPolynomialRatiosConvergeTowardHeadline) {
  // The complete expressions approach 1/3 / 2/3 from above as N grows.
  double prev_hw = 10.0;
  double prev_delay = 10.0;
  for (unsigned mm = 4; mm <= 40; mm += 4) {
    const std::uint64_t N = 1ULL << mm;
    const auto bat_hw = table1_leading(NetworkKind::kBatcher, N);
    const auto bnb_hw = table1_leading(NetworkKind::kBnb, N);
    const double hw = (bnb_hw.switches + bnb_hw.function_slices) /
                      (bat_hw.switches + bat_hw.function_slices);
    const double dl = table2_delay(NetworkKind::kBnb, N) /
                      table2_delay(NetworkKind::kBatcher, N);
    EXPECT_LT(hw, prev_hw);
    EXPECT_LT(dl, prev_delay);
    EXPECT_GT(hw, 1.0 / 3.0);
    EXPECT_GT(dl, 2.0 / 3.0);
    prev_hw = hw;
    prev_delay = dl;
  }
  // Far out, the ratios are close to the headline numbers.
  EXPECT_NEAR(prev_hw, 1.0 / 3.0, 0.04);
  EXPECT_NEAR(prev_delay, 2.0 / 3.0, 0.08);
}

TEST(Complexity, NonPowersRejected) {
  EXPECT_THROW((void)bnb_cost_exact(12, 0), bnb::contract_violation);
  EXPECT_THROW((void)batcher_comparator_count(0), bnb::contract_violation);
  EXPECT_THROW((void)bnb_delay(1), bnb::contract_violation);
}

TEST(Complexity, NetworkKindNames) {
  EXPECT_EQ(network_kind_name(NetworkKind::kBatcher), "Batcher");
  EXPECT_EQ(network_kind_name(NetworkKind::kKoppelman), "Koppelman[11]");
  EXPECT_EQ(network_kind_name(NetworkKind::kBnb), "This paper (BNB)");
}

}  // namespace
}  // namespace bnb::model
